//! The centralized checkpoint coordinator (DMTCP-coordinator analog).
//!
//! The coordinator raises checkpoint *intent*, waits until every rank has
//! parked at a safe point (collecting each rank's in-collective status and
//! globally-unique communicator ID, §III-K), releases the drain, gathers
//! per-rank image sizes, and resumes or kills the job. It also carries the
//! side-channel traffic of the *legacy* drain algorithm (global totals,
//! §III-B baseline) so the ablation bench can measure how chatty it is.
//!
//! MANA-2.0's lesson §III-M — "additional communication by MANA should be
//! minimized … use MPI calls instead of the centralized coordinator" — is
//! visible in the message counters: with `DrainMode::Alltoall`, the
//! coordinator exchanges exactly 3 messages per rank per checkpoint
//! (Ready/Go, Done/Resume), while `DrainMode::Coordinator` adds rounds of
//! count reports.

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use mpisim::{ParkerRef, UnparkerRef};
use obs::metrics as met;
use splitproc::store;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rank → coordinator messages.
#[derive(Debug)]
pub enum RankMsg {
    /// Any rank may ask for a checkpoint (`dmtcp_command -c` analog).
    RequestCkpt,
    /// Parked at a safe point; reports whether the rank was inside a
    /// MANA-level collective and, if so, its globally-unique gid (§III-K).
    Ready {
        /// Reporting rank.
        rank: usize,
        /// gid of the collective the rank is parked inside, if any.
        in_collective: Option<u64>,
    },
    /// Legacy-drain round report: this rank's total sent/received bytes.
    DrainReport {
        /// Reporting rank.
        rank: usize,
        /// Total user bytes sent.
        sent: u64,
        /// Total user bytes received (including drained).
        recvd: u64,
    },
    /// Topological-sort drain (arXiv 2408.02218): this rank's full
    /// per-peer sent/received rows. One exchange per round — the
    /// coordinator orders the in-flight dependencies and answers with
    /// each rank's exact expected-bytes column, so no collective
    /// emulation (and no repeat reporting) is needed.
    DrainRows {
        /// Reporting rank.
        rank: usize,
        /// Bytes sent to each peer (world-rank indexed).
        sent: Vec<u64>,
        /// Bytes received from each peer (world-rank indexed).
        recvd: Vec<u64>,
    },
    /// Image durably written.
    CkptDone {
        /// Reporting rank.
        rank: usize,
        /// Bytes of the written rank file — the flat image, or the recipe
        /// in chunked mode. Recorded in the generation manifest, so
        /// restart's whole-file size/CRC check matches what is on disk.
        image_bytes: u64,
        /// CRC32 of the written rank file (same manifest-facing rule).
        image_crc: u32,
        /// Logical image payload bytes, layout-independent — what the
        /// round report sums, so "image bytes per round" means the same
        /// thing under flat and chunked stores.
        logical_bytes: u64,
    },
    /// Image write failed (even after bounded retries). The round cannot
    /// commit; the coordinator aborts the generation.
    CkptFailed {
        /// Reporting rank.
        rank: usize,
        /// What went wrong.
        reason: String,
    },
    /// The application closure wants to finish; the rank blocks until the
    /// coordinator acknowledges (so a concurrent checkpoint round cannot
    /// lose a participant).
    Finishing {
        /// Reporting rank.
        rank: usize,
    },
}

/// Coordinator → rank messages (per-rank channels).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordMsg {
    /// All ranks parked; run the drain and write images.
    Go {
        /// Checkpoint round number.
        round: u64,
    },
    /// Legacy-drain verdict for the round just reported.
    DrainVerdict {
        /// True when global sent == received.
        balanced: bool,
    },
    /// Topological-sort drain schedule, answering [`RankMsg::DrainRows`].
    DrainSchedule {
        /// Exact bytes each peer sent this rank (the rank drains until
        /// its received counters meet this column).
        expected: Vec<u64>,
        /// This rank's position in the topological order of the
        /// in-flight send→receive dependency graph.
        order: u32,
        /// Edges in the dependency graph (global, for observability).
        edges: u64,
        /// Whether a cycle forced the planner to break ties (mutual
        /// in-flight traffic; the drain still terminates because the
        /// expected columns are exact).
        cyclic: bool,
    },
    /// Images written everywhere; continue executing.
    Resume,
    /// Images written everywhere; exit (checkpoint-and-kill).
    Exit,
    /// Some rank failed to write its image: the round did not commit.
    /// Every rank discards its partial image state and resumes; prior
    /// committed generations are untouched.
    AbortRound {
        /// The round that failed to commit.
        round: u64,
    },
    /// Acknowledge a `Finishing` rank: it may leave.
    FinishAck,
}

/// Statistics of one completed checkpoint round.
#[derive(Debug, Clone, PartialEq)]
pub struct CkptRoundStats {
    /// Round number (0-based).
    pub round: u64,
    /// Wall time from intent to all-parked.
    pub quiesce: Duration,
    /// Wall time from Go to all images written.
    pub write: Duration,
    /// Sum of image sizes across ranks.
    pub total_image_bytes: u64,
    /// Distinct in-collective gids reported at park time.
    pub gids_in_flight: Vec<u64>,
    /// Coordinator messages exchanged during this round.
    pub coord_msgs: u64,
}

/// Handle held by each rank.
#[derive(Clone)]
pub struct CoordHandle {
    rank: usize,
    intent: Arc<AtomicBool>,
    round: Arc<AtomicU64>,
    to_coord: Sender<RankMsg>,
    from_coord: Receiver<CoordMsg>,
    /// Fault plan injecting latency into rank→coordinator messages.
    fault: Option<Arc<mpisim::FaultPlan>>,
    /// Per-rank counter identifying each sent message to the fault plan.
    sent_msgs: Arc<AtomicU64>,
    /// Flight recorder for this rank (records fault-plan firings on the
    /// control channel).
    rec: Option<obs::Recorder>,
    /// Metrics-plane handle for this rank (counts control-channel fault
    /// firings).
    meter: Option<met::Meter>,
    /// The rank's engine parker, attached by the runtime once the rank's
    /// `Proc` exists. When set, every blocking point on the control
    /// channel (receive waits, injected stalls) parks through the engine
    /// instead of sleeping — under the coop engine this releases the run
    /// token so other ranks make progress during a quiesce.
    parker: Option<ParkerRef>,
}

impl CoordHandle {
    /// Is checkpoint intent raised? (The hot-path check in every wrapper.)
    #[inline]
    pub fn intent(&self) -> bool {
        self.intent.load(Ordering::Acquire)
    }

    /// Current checkpoint round number.
    pub fn round(&self) -> u64 {
        self.round.load(Ordering::Acquire)
    }

    /// My rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Route this handle's blocking points through the rank's engine
    /// parker. Called by the runtime as soon as the rank's `Proc` exists.
    pub fn attach_parker(&mut self, parker: ParkerRef) {
        self.parker = Some(parker);
    }

    /// Block this rank for `d` of wall time without holding its run token:
    /// parks on the engine parker in a deadline loop (early wakes from
    /// banked unparks just re-park), falling back to a plain sleep when no
    /// parker is attached. Used for injected stalls (coordinator-channel
    /// delay, ready-stall) so fault injection cannot wedge the coop
    /// engine's worker pool.
    pub fn stall(&self, d: Duration) {
        let Some(p) = &self.parker else {
            std::thread::sleep(d);
            return;
        };
        let deadline = Instant::now() + d;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            p.park(deadline - now);
        }
    }

    /// Send a message to the coordinator. Under a fault plan, a seeded
    /// subset of messages is delayed first — modelling a slow control
    /// network between a rank and the DMTCP-style coordinator, which
    /// widens the window between a rank parking and the coordinator
    /// noticing.
    pub fn send(&self, msg: RankMsg) -> crate::error::Result<()> {
        if let Some(fp) = &self.fault {
            let k = self.sent_msgs.fetch_add(1, Ordering::Relaxed);
            if let Some(d) = fp.coord_delay(self.rank, k) {
                if let Some(m) = &self.meter {
                    m.add(met::FAULTS_FIRED, 1);
                }
                if let Some(r) = &self.rec {
                    r.event(
                        obs::NO_ROUND,
                        obs::EventKind::FaultFired {
                            fault: obs::FaultKind::CoordDelay,
                        },
                    );
                }
                self.stall(d);
            }
        }
        self.to_coord
            .send(msg)
            .map_err(|_| crate::error::ManaError::CoordinatorGone)
    }

    /// Blocking receive of the next coordinator message. With a parker
    /// attached the wait is event-driven: the coordinator unparks the rank
    /// after every message it sends, and the 50 ms cap is only a safety
    /// net. Without one (unit tests driving the protocol on bare OS
    /// threads) it degrades to a plain timeout loop.
    pub fn recv(&self) -> crate::error::Result<CoordMsg> {
        loop {
            match &self.parker {
                Some(p) => match self.from_coord.try_recv() {
                    Ok(m) => return Ok(m),
                    Err(TryRecvError::Empty) => p.park(Duration::from_millis(50)),
                    Err(TryRecvError::Disconnected) => {
                        return Err(crate::error::ManaError::CoordinatorGone)
                    }
                },
                None => match self.from_coord.recv_timeout(Duration::from_millis(50)) {
                    Ok(m) => return Ok(m),
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(crate::error::ManaError::CoordinatorGone)
                    }
                },
            }
        }
    }

    /// Ask for a checkpoint.
    pub fn request_checkpoint(&self) -> crate::error::Result<()> {
        self.send(RankMsg::RequestCkpt)
    }
}

/// External trigger for checkpoints (held by the driving test/benchmark).
#[derive(Clone)]
pub struct CkptTrigger {
    tx: Sender<RankMsg>,
}

impl CkptTrigger {
    /// Request a checkpoint round.
    pub fn checkpoint(&self) {
        let _ = self.tx.send(RankMsg::RequestCkpt);
    }
}

/// One checkpoint round that failed to commit and was aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbortedRound {
    /// The round that was aborted.
    pub round: u64,
    /// Per-rank failure reasons (usually one; coordinator-side manifest
    /// write failures are recorded under `usize::MAX`).
    pub failures: Vec<(usize, String)>,
}

/// Coordinator outcome after all ranks finished.
#[derive(Debug, Clone, Default)]
pub struct CoordReport {
    /// One entry per completed (committed) checkpoint round.
    pub rounds: Vec<CkptRoundStats>,
    /// Rounds that ended in `AbortRound` instead of committing.
    pub aborted_rounds: Vec<AbortedRound>,
    /// Checkpoint requests ignored because ranks had already finished.
    pub skipped_requests: u64,
    /// Commit-time invariant violations, one entry per failing round. A
    /// non-empty list means a checkpoint committed over a broken global
    /// state (e.g. user traffic still in flight after the drain); the
    /// runtime converts it into an error.
    pub invariant_violations: Vec<String>,
}

/// The coordinator's view of the generational checkpoint store: where the
/// generations live and how many committed ones to retain. `None` (unit
/// tests driving the coordinator directly) skips manifest commits, abort
/// cleanup, and GC — the two-phase message protocol still runs.
#[derive(Debug, Clone)]
pub struct CoordStore {
    /// Store root (the runtime's `ckpt_dir`).
    pub root: PathBuf,
    /// Committed generations to keep (floor 1).
    pub retain: usize,
    /// Store policy (retry/backoff + flat-vs-chunked layout) — the same
    /// config the ranks write images with, so manifest writes share their
    /// retry semantics and GC knows whether a chunk pool may exist.
    pub store: splitproc::StoreConfig,
}

/// A topological plan over the in-flight send→receive dependency graph,
/// computed by the coordinator from every rank's [`RankMsg::DrainRows`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoPlan {
    /// `order[r]` is rank `r`'s position in the topological order.
    pub order: Vec<u32>,
    /// Number of edges in the dependency graph.
    pub edges: u64,
    /// True when mutual in-flight traffic formed a cycle and the planner
    /// broke it (smallest-rank-first). The drain still terminates: the
    /// expected columns are exact regardless of order.
    pub cyclic: bool,
}

/// Order ranks topologically by in-flight traffic (arXiv 2408.02218).
///
/// `sent[i][j]` / `recvd[j][i]` are the rows every rank shipped in its
/// [`RankMsg::DrainRows`]; bytes in flight from `i` to `j` are
/// `sent[i][j] − recvd[j][i]`, and each positive entry is an edge `i → j`
/// ("`i`'s traffic must land before `j` is quiet"). Kahn's algorithm with
/// deterministic smallest-rank-first selection; a cycle (mutual in-flight
/// traffic) is broken by releasing the smallest remaining rank.
pub fn topo_order(sent: &[Vec<u64>], recvd: &[Vec<u64>]) -> TopoPlan {
    let n = sent.len();
    let mut indeg = vec![0usize; n];
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut edges = 0u64;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let s = sent[i].get(j).copied().unwrap_or(0);
            let r = recvd[j].get(i).copied().unwrap_or(0);
            if s.saturating_sub(r) > 0 {
                out[i].push(j);
                indeg[j] += 1;
                edges += 1;
            }
        }
    }
    let mut order = vec![0u32; n];
    let mut placed = vec![false; n];
    let mut cyclic = false;
    for pos in 0..n {
        let next = match (0..n).find(|&r| !placed[r] && indeg[r] == 0) {
            Some(r) => r,
            None => {
                cyclic = true;
                (0..n).find(|&r| !placed[r]).expect("unplaced rank exists")
            }
        };
        placed[next] = true;
        order[next] = pos as u32;
        for &j in &out[next] {
            if !placed[j] {
                indeg[j] = indeg[j].saturating_sub(1);
            }
        }
    }
    TopoPlan {
        order,
        edges,
        cyclic,
    }
}

/// Global invariant checker run by the coordinator at the commit point of
/// every round — after all `CkptDone`, before intent drops and `Resume`/
/// `Exit` is broadcast. Receives the round number; returns a description
/// of the violation if the committed global state is inconsistent.
pub type CommitCheck = Box<dyn Fn(u64) -> std::result::Result<(), String> + Send>;

/// Spawn the coordinator thread for a world of `n` ranks.
///
/// Returns per-rank handles, the external trigger, and a join handle whose
/// result is the coordinator's report.
pub fn spawn_coordinator(
    n: usize,
    exit_after_ckpt: bool,
) -> (
    Vec<CoordHandle>,
    CkptTrigger,
    std::thread::JoinHandle<CoordReport>,
) {
    spawn_coordinator_ext(n, exit_after_ckpt, None, None, None, 0, None, None, None)
}

/// The coordinator's outbound port to one rank: a bounded channel plus the
/// rank's engine unparker. Every send is followed by an unpark so a rank
/// parked in [`CoordHandle::recv`] (or in a scheduling park between
/// wrapper calls) wakes promptly instead of waiting out its timeout.
struct RankPort {
    tx: Sender<CoordMsg>,
    waker: Option<UnparkerRef>,
}

impl RankPort {
    fn send(&self, msg: CoordMsg) {
        let _ = self.tx.send(msg);
        if let Some(w) = &self.waker {
            w.unpark();
        }
    }
}

/// [`spawn_coordinator`] with fault injection, a commit-time invariant
/// checker, a generational store for two-phase round commit, the first
/// round number, and an optional flight-recorder sink. A restarted world
/// passes `restored_round + 1` so round numbers — and therefore
/// generation directories — keep advancing across restarts instead of
/// colliding with committed generations. When `trace` is set, the
/// coordinator records its own quiesce/write/commit spans into the
/// sink's coordinator ring ([`obs::COORD_ACTOR`]) and each handle
/// records control-channel fault firings into its rank's ring.
///
/// `wakers` carries one engine unparker per rank (from
/// [`mpisim::World::unparkers`]); the coordinator unparks a rank after
/// every message to it and unparks all ranks when it raises checkpoint
/// intent, so engine-parked ranks notice control traffic promptly.
///
/// When `metrics` is set, the coordinator records round counters and
/// quiesce/write/commit/fan-in latency histograms into its
/// [`obs::COORD_ACTOR`] shard, and each handle counts control-channel
/// fault firings under its rank.
#[allow(clippy::too_many_arguments)]
pub fn spawn_coordinator_ext(
    n: usize,
    exit_after_ckpt: bool,
    fault: Option<Arc<mpisim::FaultPlan>>,
    commit_check: Option<CommitCheck>,
    ckpt_store: Option<CoordStore>,
    initial_round: u64,
    trace: Option<Arc<obs::TraceSink>>,
    wakers: Option<Vec<UnparkerRef>>,
    metrics: Option<Arc<met::MetricsRegistry>>,
) -> (
    Vec<CoordHandle>,
    CkptTrigger,
    std::thread::JoinHandle<CoordReport>,
) {
    if let Some(w) = &wakers {
        assert_eq!(w.len(), n, "need one waker per rank");
    }
    let (to_coord, from_ranks) = unbounded::<RankMsg>();
    let intent = Arc::new(AtomicBool::new(false));
    let round = Arc::new(AtomicU64::new(initial_round));
    let mut handles = Vec::with_capacity(n);
    let mut ports = Vec::with_capacity(n);
    for rank in 0..n {
        let (tx, rx) = bounded::<CoordMsg>(8);
        ports.push(RankPort {
            tx,
            waker: wakers.as_ref().map(|w| w[rank].clone()),
        });
        handles.push(CoordHandle {
            rank,
            intent: intent.clone(),
            round: round.clone(),
            to_coord: to_coord.clone(),
            from_coord: rx,
            fault: fault.clone(),
            sent_msgs: Arc::new(AtomicU64::new(0)),
            rec: trace.as_ref().map(|s| s.recorder(rank as i32)),
            meter: metrics.as_ref().map(|m| m.meter(rank as i32)),
            parker: None,
        });
    }
    let trigger = CkptTrigger {
        tx: to_coord.clone(),
    };
    let coord_rec = trace.as_ref().map(|s| s.recorder(obs::COORD_ACTOR));
    let coord_meter = metrics.as_ref().map(|m| m.meter(obs::COORD_ACTOR));
    let join = std::thread::Builder::new()
        .name("mana-coordinator".into())
        .spawn(move || {
            coordinator_loop(
                n,
                exit_after_ckpt,
                intent,
                round,
                from_ranks,
                ports,
                commit_check,
                ckpt_store,
                coord_rec,
                coord_meter,
            )
        })
        .expect("spawn coordinator");
    (handles, trigger, join)
}

#[allow(clippy::too_many_arguments)]
fn coordinator_loop(
    n: usize,
    exit_after_ckpt: bool,
    intent: Arc<AtomicBool>,
    round_ctr: Arc<AtomicU64>,
    from_ranks: Receiver<RankMsg>,
    ports: Vec<RankPort>,
    commit_check: Option<CommitCheck>,
    ckpt_store: Option<CoordStore>,
    rec: Option<obs::Recorder>,
    meter: Option<met::Meter>,
) -> CoordReport {
    let mut report = CoordReport::default();
    let mut finished = vec![false; n];
    let mut finished_count = 0usize;
    let mut exited = false;

    'outer: while finished_count < n {
        let msg = match from_ranks.recv_timeout(Duration::from_secs(120)) {
            Ok(m) => m,
            Err(RecvTimeoutError::Timeout) => break,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        match msg {
            RankMsg::Finishing { rank } => {
                finished[rank] = true;
                finished_count += 1;
                ports[rank].send(CoordMsg::FinishAck);
            }
            RankMsg::RequestCkpt => {
                if finished_count > 0 || exited {
                    report.skipped_requests += 1;
                    continue;
                }
                // ---- one checkpoint round ----
                let round = round_ctr.load(Ordering::Acquire);
                if std::env::var("MANA2_DEBUG").is_ok() {
                    eprintln!("mana2: coordinator starting round {round}");
                }
                let t0 = Instant::now();
                let mut msgs = 0u64;
                intent.store(true, Ordering::Release);
                // Kick every rank: one parked between wrapper calls would
                // otherwise only notice the raised intent when its park
                // timeout expires.
                for port in &ports {
                    if let Some(w) = &port.waker {
                        w.unpark();
                    }
                }
                if let Some(r) = &rec {
                    r.begin(round as i64, obs::Phase::Intent);
                }

                // Phase 1: collect Ready from every rank.
                let mut ready = 0usize;
                let mut gids = Vec::new();
                while ready < n {
                    match from_ranks.recv_timeout(Duration::from_secs(120)) {
                        Ok(RankMsg::Ready { in_collective, .. }) => {
                            msgs += 1;
                            ready += 1;
                            if let Some(g) = in_collective {
                                if !gids.contains(&g) {
                                    gids.push(g);
                                }
                            }
                        }
                        // A rank announcing Finishing is at a safe point:
                        // count it Ready. Its finalize loop handles the Go
                        // it receives instead of FinishAck, runs the
                        // checkpoint, and re-announces Finishing afterwards.
                        Ok(RankMsg::Finishing { .. }) => {
                            msgs += 1;
                            ready += 1;
                        }
                        Ok(RankMsg::RequestCkpt) => {
                            // Coalesce concurrent requests into this round.
                            report.skipped_requests += 1;
                        }
                        Ok(other) => {
                            debug_assert!(false, "unexpected during quiesce: {other:?}");
                        }
                        Err(_) => break 'outer,
                    }
                }
                let quiesce = t0.elapsed();
                if let Some(r) = &rec {
                    r.end(round as i64, obs::Phase::Intent);
                    // The coordinator's "write" window opens at Go and
                    // closes when the last rank reports — it brackets
                    // every rank's drain + image write.
                    r.begin(round as i64, obs::Phase::ImageWrite);
                }

                // Phase 2: release the drain.
                for port in &ports {
                    port.send(CoordMsg::Go { round });
                    msgs += 1;
                }

                // Phase 2b (legacy drain only): totals rounds. The ranks
                // drive this; we answer every complete set of n reports.
                // Phase 3: collect Done/Failed from every rank.
                let t1 = Instant::now();
                let mut reported = 0usize;
                let mut total_bytes = 0u64;
                let mut images: Vec<Option<store::ManifestEntry>> = vec![None; n];
                let mut failures: Vec<(usize, String)> = Vec::new();
                let mut drain_reports: Vec<(u64, u64)> = Vec::new();
                // Topo-sort drain: one (sent, recvd) row pair per rank.
                let mut topo_rows: Vec<Option<(Vec<u64>, Vec<u64>)>> = vec![None; n];
                let mut topo_count = 0usize;
                // Fan-in spread: first to last rank report this round.
                let mut first_report: Option<Instant> = None;
                let mut last_report: Option<Instant> = None;
                while reported < n {
                    match from_ranks.recv_timeout(Duration::from_secs(120)) {
                        Ok(RankMsg::DrainReport { sent, recvd, .. }) => {
                            msgs += 1;
                            drain_reports.push((sent, recvd));
                            if drain_reports.len() == n {
                                let s: u64 = drain_reports.iter().map(|r| r.0).sum();
                                let r: u64 = drain_reports.iter().map(|r| r.1).sum();
                                let balanced = s == r;
                                for port in &ports {
                                    port.send(CoordMsg::DrainVerdict { balanced });
                                    msgs += 1;
                                }
                                drain_reports.clear();
                            }
                        }
                        Ok(RankMsg::DrainRows { rank, sent, recvd }) => {
                            msgs += 1;
                            if topo_rows[rank].replace((sent, recvd)).is_none() {
                                topo_count += 1;
                            }
                            if topo_count == n {
                                // Plan once all rows are in: order the
                                // in-flight dependency graph and hand every
                                // rank its exact expected column.
                                if let Some(r) = &rec {
                                    r.begin(round as i64, obs::Phase::DrainPlan);
                                }
                                let rows: Vec<(Vec<u64>, Vec<u64>)> = topo_rows
                                    .iter_mut()
                                    .map(|r| r.take().expect("all rows present"))
                                    .collect();
                                topo_count = 0;
                                let sent: Vec<Vec<u64>> =
                                    rows.iter().map(|r| r.0.clone()).collect();
                                let recvd: Vec<Vec<u64>> =
                                    rows.iter().map(|r| r.1.clone()).collect();
                                let plan = topo_order(&sent, &recvd);
                                if let Some(m) = &meter {
                                    m.add(met::DRAIN_TOPO_PLANS, 1);
                                    m.add(met::DRAIN_TOPO_EDGES, plan.edges);
                                    if plan.cyclic {
                                        m.add(met::DRAIN_TOPO_CYCLES, 1);
                                    }
                                }
                                for (j, port) in ports.iter().enumerate() {
                                    let expected: Vec<u64> = (0..n)
                                        .map(|i| sent[i].get(j).copied().unwrap_or(0))
                                        .collect();
                                    port.send(CoordMsg::DrainSchedule {
                                        expected,
                                        order: plan.order[j],
                                        edges: plan.edges,
                                        cyclic: plan.cyclic,
                                    });
                                    msgs += 1;
                                }
                                if let Some(r) = &rec {
                                    r.end(round as i64, obs::Phase::DrainPlan);
                                }
                            }
                        }
                        Ok(RankMsg::CkptDone {
                            rank,
                            image_bytes,
                            image_crc,
                            logical_bytes,
                        }) => {
                            msgs += 1;
                            reported += 1;
                            let now = Instant::now();
                            first_report.get_or_insert(now);
                            last_report = Some(now);
                            total_bytes += logical_bytes;
                            images[rank] = Some(store::ManifestEntry {
                                rank: rank as u64,
                                bytes: image_bytes,
                                crc: image_crc,
                            });
                        }
                        Ok(RankMsg::CkptFailed { rank, reason }) => {
                            msgs += 1;
                            reported += 1;
                            let now = Instant::now();
                            first_report.get_or_insert(now);
                            last_report = Some(now);
                            failures.push((rank, reason));
                        }
                        Ok(RankMsg::RequestCkpt) => {
                            report.skipped_requests += 1;
                        }
                        Ok(other) => {
                            debug_assert!(false, "unexpected during write: {other:?}");
                        }
                        Err(_) => break 'outer,
                    }
                }
                let write = t1.elapsed();
                if let Some(r) = &rec {
                    r.end(round as i64, obs::Phase::ImageWrite);
                }
                if let Some(m) = &meter {
                    if let (Some(a), Some(b)) = (first_report, last_report) {
                        m.observe(
                            met::COORD_FANIN_NS,
                            b.saturating_duration_since(a).as_nanos() as u64,
                        );
                    }
                }

                // Commit point: every rank has drained and reported, none
                // has resumed. The round commits only if *all* ranks wrote
                // durably — then the manifest makes it restart material.
                let t_commit = Instant::now();
                if failures.is_empty() {
                    if let Some(r) = &rec {
                        r.begin(round as i64, obs::Phase::Commit);
                    }
                    if let Some(cs) = &ckpt_store {
                        let manifest = store::Manifest {
                            round,
                            world_size: n as u64,
                            entries: images.iter().flatten().copied().collect(),
                        };
                        if let Err(e) = store::commit_generation(&cs.root, &manifest, &cs.store) {
                            // Manifest didn't land: the generation is not
                            // committed. Treat like a rank failure.
                            failures.push((usize::MAX, format!("manifest write failed: {e}")));
                        }
                    }
                    if let Some(r) = &rec {
                        r.end(round as i64, obs::Phase::Commit);
                    }
                }

                if !failures.is_empty() {
                    if let Some(r) = &rec {
                        r.begin(round as i64, obs::Phase::AbortRound);
                    }
                    // Abort path: scrap the partial generation, tell every
                    // rank to discard and resume. Prior committed
                    // generations are untouched — round N's failure never
                    // costs round N−1.
                    if let Some(cs) = &ckpt_store {
                        let _ = store::abort_generation(&cs.root, round);
                    }
                    intent.store(false, Ordering::Release);
                    round_ctr.store(round + 1, Ordering::Release);
                    for port in &ports {
                        port.send(CoordMsg::AbortRound { round });
                    }
                    if std::env::var("MANA2_DEBUG").is_ok() {
                        eprintln!("mana2: coordinator aborted round {round}: {failures:?}");
                    }
                    if let Some(r) = &rec {
                        r.end(round as i64, obs::Phase::AbortRound);
                    }
                    if let Some(m) = &meter {
                        m.add(met::ROUNDS_ABORTED, 1);
                    }
                    report.aborted_rounds.push(AbortedRound { round, failures });
                    continue;
                }

                // This is the only instant where the global quiesced state
                // is observable — run the invariant checker here, before
                // intent drops.
                if let Some(check) = &commit_check {
                    if let Err(v) = check(round) {
                        report
                            .invariant_violations
                            .push(format!("round {round}: {v}"));
                    }
                }

                // Phase 4: resume or kill. Intent must drop *before* the
                // broadcast: the channel receive synchronizes-with the
                // send, so a resuming rank is guaranteed to read intent ==
                // false and cannot emit a spurious Ready into the main
                // loop.
                intent.store(false, Ordering::Release);
                round_ctr.store(round + 1, Ordering::Release);
                let fin = if exit_after_ckpt {
                    CoordMsg::Exit
                } else {
                    CoordMsg::Resume
                };
                for port in &ports {
                    port.send(fin.clone());
                    msgs += 1;
                }
                if let Some(m) = &meter {
                    m.add(met::ROUNDS_COMMITTED, 1);
                    m.observe(met::ROUND_QUIESCE_NS, quiesce.as_nanos() as u64);
                    m.observe(met::ROUND_WRITE_NS, write.as_nanos() as u64);
                    m.observe(met::ROUND_COMMIT_NS, t_commit.elapsed().as_nanos() as u64);
                    m.observe(met::ROUND_LATENCY_NS, t0.elapsed().as_nanos() as u64);
                }
                report.rounds.push(CkptRoundStats {
                    round,
                    quiesce,
                    write,
                    total_image_bytes: total_bytes,
                    gids_in_flight: gids,
                    coord_msgs: msgs,
                });
                // The committed round supersedes older generations: sweep
                // beyond the retention window (best-effort; GC failure
                // must not fail the job). Generations pinned by an open
                // restart-journal epoch are exempt — a restart in flight
                // must never have its source collected out from under it.
                if let Some(cs) = &ckpt_store {
                    if let Ok(collected) = store::gc_generations(&cs.root, cs.retain) {
                        if let Some(m) = &meter {
                            m.add(met::STORE_GC_GENERATIONS, collected.len() as u64);
                        }
                    }
                    // With generations swept, chunks referenced only by the
                    // removed rounds are garbage. The sweep runs strictly
                    // after gc_generations (journal-pinned generations
                    // survive it, so their chunks stay referenced) and
                    // never concurrently with image writes — the ranks are
                    // parked in phase 4 until the verdict fan-out above.
                    if cs.store.mode == splitproc::StoreMode::Chunked {
                        if let Ok(swept) = store::gc_chunks(&cs.root) {
                            if let Some(m) = &meter {
                                m.add(met::STORE_GC_CHUNKS, swept.removed);
                            }
                        }
                    }
                }
                if exit_after_ckpt {
                    exited = true;
                }
            }
            RankMsg::Ready { .. }
            | RankMsg::DrainReport { .. }
            | RankMsg::DrainRows { .. }
            | RankMsg::CkptDone { .. }
            | RankMsg::CkptFailed { .. } => {
                debug_assert!(false, "stray message outside a round: {msg:?}");
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finishing_without_checkpoints() {
        let n = 3;
        let (handles, _trigger, join) = spawn_coordinator(n, false);
        let threads: Vec<_> = handles
            .into_iter()
            .map(|h| {
                std::thread::spawn(move || {
                    h.send(RankMsg::Finishing { rank: h.rank() }).unwrap();
                    assert_eq!(h.recv().unwrap(), CoordMsg::FinishAck);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let report = join.join().unwrap();
        assert!(report.rounds.is_empty());
    }

    #[test]
    fn one_full_round_resume() {
        let n = 4;
        let (handles, trigger, join) = spawn_coordinator(n, false);
        trigger.checkpoint();
        let threads: Vec<_> = handles
            .into_iter()
            .map(|h| {
                std::thread::spawn(move || {
                    // Wait for intent like a wrapper would.
                    while !h.intent() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    h.send(RankMsg::Ready {
                        rank: h.rank(),
                        in_collective: (h.rank() % 2 == 0).then_some(42),
                    })
                    .unwrap();
                    assert_eq!(h.recv().unwrap(), CoordMsg::Go { round: 0 });
                    h.send(RankMsg::CkptDone {
                        rank: h.rank(),
                        image_bytes: 100,
                        image_crc: 0,
                        logical_bytes: 100,
                    })
                    .unwrap();
                    assert_eq!(h.recv().unwrap(), CoordMsg::Resume);
                    assert!(!h.intent(), "intent cleared after resume");
                    assert_eq!(h.round(), 1);
                    h.send(RankMsg::Finishing { rank: h.rank() }).unwrap();
                    assert_eq!(h.recv().unwrap(), CoordMsg::FinishAck);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let report = join.join().unwrap();
        assert_eq!(report.rounds.len(), 1);
        let r = &report.rounds[0];
        assert_eq!(r.total_image_bytes, 400);
        assert_eq!(r.gids_in_flight, vec![42]);
        assert!(r.coord_msgs >= 3 * n as u64);
    }

    #[test]
    fn exit_after_ckpt_sends_exit() {
        let n = 2;
        let (handles, trigger, join) = spawn_coordinator(n, true);
        trigger.checkpoint();
        let threads: Vec<_> = handles
            .into_iter()
            .map(|h| {
                std::thread::spawn(move || {
                    while !h.intent() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    h.send(RankMsg::Ready {
                        rank: h.rank(),
                        in_collective: None,
                    })
                    .unwrap();
                    assert!(matches!(h.recv().unwrap(), CoordMsg::Go { .. }));
                    h.send(RankMsg::CkptDone {
                        rank: h.rank(),
                        image_bytes: 10,
                        image_crc: 0,
                        logical_bytes: 10,
                    })
                    .unwrap();
                    assert_eq!(h.recv().unwrap(), CoordMsg::Exit);
                    // Exiting ranks still announce Finishing so the
                    // coordinator can wind down.
                    h.send(RankMsg::Finishing { rank: h.rank() }).unwrap();
                    assert_eq!(h.recv().unwrap(), CoordMsg::FinishAck);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let report = join.join().unwrap();
        assert_eq!(report.rounds.len(), 1);
    }

    #[test]
    fn legacy_drain_rounds_answered() {
        let n = 2;
        let (handles, trigger, join) = spawn_coordinator(n, false);
        trigger.checkpoint();
        let threads: Vec<_> = handles
            .into_iter()
            .map(|h| {
                std::thread::spawn(move || {
                    while !h.intent() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    h.send(RankMsg::Ready {
                        rank: h.rank(),
                        in_collective: None,
                    })
                    .unwrap();
                    assert!(matches!(h.recv().unwrap(), CoordMsg::Go { .. }));
                    // Round 1: unbalanced (rank 0 sent 10, nobody received).
                    h.send(RankMsg::DrainReport {
                        rank: h.rank(),
                        sent: if h.rank() == 0 { 10 } else { 0 },
                        recvd: 0,
                    })
                    .unwrap();
                    assert_eq!(
                        h.recv().unwrap(),
                        CoordMsg::DrainVerdict { balanced: false }
                    );
                    // Round 2: balanced.
                    h.send(RankMsg::DrainReport {
                        rank: h.rank(),
                        sent: if h.rank() == 0 { 10 } else { 0 },
                        recvd: if h.rank() == 1 { 10 } else { 0 },
                    })
                    .unwrap();
                    assert_eq!(h.recv().unwrap(), CoordMsg::DrainVerdict { balanced: true });
                    h.send(RankMsg::CkptDone {
                        rank: h.rank(),
                        image_bytes: 1,
                        image_crc: 0,
                        logical_bytes: 1,
                    })
                    .unwrap();
                    assert_eq!(h.recv().unwrap(), CoordMsg::Resume);
                    h.send(RankMsg::Finishing { rank: h.rank() }).unwrap();
                    assert_eq!(h.recv().unwrap(), CoordMsg::FinishAck);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let report = join.join().unwrap();
        assert_eq!(report.rounds.len(), 1);
        // Legacy drain cost shows up in the message counter: 2 reports + 2
        // verdicts per round × 2 rounds on top of the base 3-per-rank.
        assert!(report.rounds[0].coord_msgs > 3 * n as u64);
    }

    #[test]
    fn topo_order_respects_one_way_traffic() {
        // 0 → 1 → 2 in flight: the order must place 0 before 1 before 2.
        let sent = vec![vec![0, 10, 0], vec![0, 0, 5], vec![0, 0, 0]];
        let recvd = vec![vec![0; 3]; 3];
        let plan = topo_order(&sent, &recvd);
        assert_eq!(plan.order, vec![0, 1, 2]);
        assert_eq!(plan.edges, 2);
        assert!(!plan.cyclic);
    }

    #[test]
    fn topo_order_ignores_settled_traffic() {
        // Everything sent was already received: no edges, identity order.
        let sent = vec![vec![0, 8], vec![3, 0]];
        let recvd = vec![vec![0, 3], vec![8, 0]];
        let plan = topo_order(&sent, &recvd);
        assert_eq!(plan.edges, 0);
        assert!(!plan.cyclic);
        assert_eq!(plan.order, vec![0, 1]);
    }

    #[test]
    fn topo_order_breaks_cycles_deterministically() {
        // Mutual in-flight traffic 0 ⇄ 1: a cycle, broken smallest-first.
        let sent = vec![vec![0, 4], vec![4, 0]];
        let recvd = vec![vec![0; 2]; 2];
        let plan = topo_order(&sent, &recvd);
        assert!(plan.cyclic);
        assert_eq!(plan.edges, 2);
        assert_eq!(plan.order, vec![0, 1]);
    }

    #[test]
    fn toposort_rows_answered_with_exact_columns() {
        let n = 2;
        let (handles, trigger, join) = spawn_coordinator(n, false);
        trigger.checkpoint();
        let threads: Vec<_> = handles
            .into_iter()
            .map(|h| {
                std::thread::spawn(move || {
                    while !h.intent() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    h.send(RankMsg::Ready {
                        rank: h.rank(),
                        in_collective: None,
                    })
                    .unwrap();
                    assert!(matches!(h.recv().unwrap(), CoordMsg::Go { .. }));
                    // Rank 0 has 10 bytes in flight to rank 1; nothing else.
                    h.send(RankMsg::DrainRows {
                        rank: h.rank(),
                        sent: if h.rank() == 0 {
                            vec![0, 10]
                        } else {
                            vec![0, 0]
                        },
                        recvd: vec![0, 0],
                    })
                    .unwrap();
                    match h.recv().unwrap() {
                        CoordMsg::DrainSchedule {
                            expected,
                            order,
                            edges,
                            cyclic,
                        } => {
                            // Each rank gets its own column of the sent
                            // matrix, and the sender precedes the receiver.
                            if h.rank() == 0 {
                                assert_eq!(expected, vec![0, 0]);
                                assert_eq!(order, 0);
                            } else {
                                assert_eq!(expected, vec![10, 0]);
                                assert_eq!(order, 1);
                            }
                            assert_eq!(edges, 1);
                            assert!(!cyclic);
                        }
                        other => panic!("expected DrainSchedule, got {other:?}"),
                    }
                    h.send(RankMsg::CkptDone {
                        rank: h.rank(),
                        image_bytes: 1,
                        image_crc: 0,
                        logical_bytes: 1,
                    })
                    .unwrap();
                    assert_eq!(h.recv().unwrap(), CoordMsg::Resume);
                    h.send(RankMsg::Finishing { rank: h.rank() }).unwrap();
                    assert_eq!(h.recv().unwrap(), CoordMsg::FinishAck);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let report = join.join().unwrap();
        assert_eq!(report.rounds.len(), 1);
        // Topo drain costs exactly 2 extra messages per rank on top of
        // the base Ready/Go/Done/Resume four.
        assert_eq!(report.rounds[0].coord_msgs, 6 * n as u64);
    }

    #[test]
    fn commit_check_failure_is_recorded() {
        let n = 2;
        let check: CommitCheck =
            Box::new(|round| Err(format!("synthetic violation in round {round}")));
        let (handles, trigger, join) =
            spawn_coordinator_ext(n, false, None, Some(check), None, 0, None, None, None);
        trigger.checkpoint();
        let threads: Vec<_> = handles
            .into_iter()
            .map(|h| {
                std::thread::spawn(move || {
                    while !h.intent() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    h.send(RankMsg::Ready {
                        rank: h.rank(),
                        in_collective: None,
                    })
                    .unwrap();
                    assert!(matches!(h.recv().unwrap(), CoordMsg::Go { .. }));
                    h.send(RankMsg::CkptDone {
                        rank: h.rank(),
                        image_bytes: 1,
                        image_crc: 0,
                        logical_bytes: 1,
                    })
                    .unwrap();
                    assert_eq!(h.recv().unwrap(), CoordMsg::Resume);
                    h.send(RankMsg::Finishing { rank: h.rank() }).unwrap();
                    assert_eq!(h.recv().unwrap(), CoordMsg::FinishAck);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let report = join.join().unwrap();
        assert_eq!(report.rounds.len(), 1);
        assert_eq!(report.invariant_violations.len(), 1);
        assert!(report.invariant_violations[0].contains("round 0"));
    }

    #[test]
    fn ckpt_failed_aborts_round_and_all_ranks_resume() {
        let n = 3;
        // Even in exit-after-checkpoint mode, a failed round must NOT
        // exit: the job resumes and may checkpoint again later.
        let (handles, trigger, join) = spawn_coordinator(n, true);
        trigger.checkpoint();
        let threads: Vec<_> = handles
            .into_iter()
            .map(|h| {
                std::thread::spawn(move || {
                    while !h.intent() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    h.send(RankMsg::Ready {
                        rank: h.rank(),
                        in_collective: None,
                    })
                    .unwrap();
                    assert!(matches!(h.recv().unwrap(), CoordMsg::Go { .. }));
                    if h.rank() == 1 {
                        h.send(RankMsg::CkptFailed {
                            rank: 1,
                            reason: "injected storage write error".into(),
                        })
                        .unwrap();
                    } else {
                        h.send(RankMsg::CkptDone {
                            rank: h.rank(),
                            image_bytes: 10,
                            image_crc: 0,
                            logical_bytes: 10,
                        })
                        .unwrap();
                    }
                    // Every rank — including the successful ones — gets
                    // AbortRound, not Exit, and resumes.
                    assert_eq!(h.recv().unwrap(), CoordMsg::AbortRound { round: 0 });
                    assert!(!h.intent(), "intent cleared after abort");
                    assert_eq!(
                        h.round(),
                        1,
                        "round counter advances past the aborted round"
                    );
                    h.send(RankMsg::Finishing { rank: h.rank() }).unwrap();
                    assert_eq!(h.recv().unwrap(), CoordMsg::FinishAck);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let report = join.join().unwrap();
        assert!(
            report.rounds.is_empty(),
            "aborted round is not a completed round"
        );
        assert_eq!(report.aborted_rounds.len(), 1);
        assert_eq!(report.aborted_rounds[0].round, 0);
        assert_eq!(report.aborted_rounds[0].failures.len(), 1);
        assert_eq!(report.aborted_rounds[0].failures[0].0, 1);
    }

    #[test]
    fn committed_round_writes_manifest_and_gc_runs() {
        let n = 2;
        let root = std::env::temp_dir().join(format!("mana2_coord_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        // Pre-write the images the ranks will claim, so the manifest the
        // coordinator commits validates against real files.
        let mut crcs = Vec::new();
        for rank in 0..n {
            let img = splitproc::CkptImage {
                rank,
                world_size: n,
                round: 0,
                upper: vec![7; 32],
                meta: vec![1; 8],
            };
            let out =
                store::write_image(&root, &img, &store::StoreConfig::default(), None).unwrap();
            crcs.push((out.bytes as u64, out.crc));
        }
        let (handles, trigger, join) = spawn_coordinator_ext(
            n,
            false,
            None,
            None,
            Some(CoordStore {
                root: root.clone(),
                retain: 2,
                store: store::StoreConfig::default(),
            }),
            0,
            None,
            None,
            None,
        );
        trigger.checkpoint();
        let threads: Vec<_> = handles
            .into_iter()
            .map(|h| {
                let (bytes, crc) = crcs[h.rank()];
                std::thread::spawn(move || {
                    while !h.intent() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    h.send(RankMsg::Ready {
                        rank: h.rank(),
                        in_collective: None,
                    })
                    .unwrap();
                    assert!(matches!(h.recv().unwrap(), CoordMsg::Go { .. }));
                    h.send(RankMsg::CkptDone {
                        rank: h.rank(),
                        image_bytes: bytes,
                        image_crc: crc,
                        logical_bytes: bytes,
                    })
                    .unwrap();
                    assert_eq!(h.recv().unwrap(), CoordMsg::Resume);
                    h.send(RankMsg::Finishing { rank: h.rank() }).unwrap();
                    assert_eq!(h.recv().unwrap(), CoordMsg::FinishAck);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let report = join.join().unwrap();
        assert_eq!(report.rounds.len(), 1);
        // The generation is now committed and selectable.
        let sel = store::select_generation(&root, Some(n)).unwrap();
        assert_eq!(sel.round, 0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn request_after_finish_is_skipped() {
        let n = 1;
        let (handles, trigger, join) = spawn_coordinator(n, false);
        let h = &handles[0];
        h.send(RankMsg::Finishing { rank: 0 }).unwrap();
        assert_eq!(h.recv().unwrap(), CoordMsg::FinishAck);
        trigger.checkpoint();
        // Coordinator exits since all finished; request may land before or
        // after the loop ends — either way no round ran.
        let report = join.join().unwrap();
        assert!(report.rounds.is_empty());
    }
}
