//! MANA-layer error type.

use mpisim::MpiError;
use splitproc::{CodecError, ImageError};
use std::fmt;

/// Errors surfaced by the MANA-2.0 layer.
#[derive(Debug)]
pub enum ManaError {
    /// The underlying (lower-half) MPI library failed.
    Mpi(MpiError),
    /// Checkpoint metadata serialization failed.
    Codec(CodecError),
    /// Checkpoint image I/O failed.
    Image(ImageError),
    /// A virtual communicator handle did not resolve.
    InvalidVComm(u64),
    /// A virtual request handle did not resolve.
    InvalidVReq(u64),
    /// The application used a tag inside MANA's reserved band.
    ReservedTag(i32),
    /// Control-flow signal: a checkpoint was written and the configuration
    /// requested exit-after-checkpoint (checkpoint-and-kill, the mode used
    /// before a restart). Not a failure: the runtime converts it into
    /// [`crate::runtime::AppOutcome::Checkpointed`].
    CkptExit,
    /// The coordinator channel closed unexpectedly.
    CoordinatorGone,
    /// Restart-time inconsistency (e.g. image world size mismatch).
    RestartMismatch(String),
    /// An injected `RestartKill` fault killed the restart at journal-step
    /// boundary `k`. Models the coordinator dying mid-restart: the
    /// journal is left exactly as the crash would leave it and a
    /// subsequent restart must resume from it. Only ever produced under
    /// a chaos fault plan, never in normal operation.
    RestartKilled {
        /// Which journal-step boundary (0-based, global counter) died.
        step: u64,
    },
    /// A checkpoint-window invariant was violated: the drain left traffic
    /// in flight, a request is in an illegal retirement state, or the
    /// active-communicator list disagrees with the live bindings. Always a
    /// bug in the checkpoint protocol, never an application error — the
    /// chaos suite exists to surface these.
    InvariantViolation(String),
}

impl fmt::Display for ManaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManaError::Mpi(e) => write!(f, "lower-half MPI error: {e}"),
            ManaError::Codec(e) => write!(f, "checkpoint codec error: {e}"),
            ManaError::Image(e) => write!(f, "checkpoint image error: {e}"),
            ManaError::InvalidVComm(v) => write!(f, "invalid virtual communicator {v}"),
            ManaError::InvalidVReq(v) => write!(f, "invalid virtual request {v}"),
            ManaError::ReservedTag(t) => {
                write!(f, "tag {t} is inside MANA's reserved internal band")
            }
            ManaError::CkptExit => write!(f, "checkpoint written; exiting as configured"),
            ManaError::CoordinatorGone => write!(f, "checkpoint coordinator disappeared"),
            ManaError::RestartMismatch(s) => write!(f, "restart mismatch: {s}"),
            ManaError::RestartKilled { step } => {
                write!(
                    f,
                    "restart killed at journal-step boundary {step} (injected)"
                )
            }
            ManaError::InvariantViolation(s) => {
                write!(f, "checkpoint invariant violated: {s}")
            }
        }
    }
}

impl std::error::Error for ManaError {}

impl From<MpiError> for ManaError {
    fn from(e: MpiError) -> Self {
        ManaError::Mpi(e)
    }
}

impl From<CodecError> for ManaError {
    fn from(e: CodecError) -> Self {
        ManaError::Codec(e)
    }
}

impl From<ImageError> for ManaError {
    fn from(e: ImageError) -> Self {
        ManaError::Image(e)
    }
}

/// Result alias for MANA-layer calls.
pub type Result<T> = std::result::Result<T, ManaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: ManaError = MpiError::Timeout.into();
        assert!(matches!(e, ManaError::Mpi(MpiError::Timeout)));
        let e: ManaError = CodecError::BadUtf8.into();
        assert!(matches!(e, ManaError::Codec(_)));
    }

    #[test]
    fn display() {
        assert!(ManaError::InvalidVComm(7).to_string().contains('7'));
        assert!(ManaError::CkptExit.to_string().contains("checkpoint"));
    }
}
