//! Checkpoint, drain, and restart (paper §III-B, §III-C, §II-A).
//!
//! The checkpoint protocol per rank:
//!
//! 1. Observe intent at a safe point; report `Ready` (with the gid of any
//!    MANA-level collective the rank is parked inside, §III-K) and wait
//!    for `Go`.
//! 2. **Drain**: exchange per-pair sent-byte rows with one `MPI_Alltoall`
//!    (or the legacy coordinator totals loop), then locally pull the
//!    still-owed bytes out of the network — `iprobe`+`recv` for unmatched
//!    messages, `MPI_Test` on recorded pending `irecv`s for messages the
//!    library already claimed (the exact §III-B fallback).
//! 3. Serialize upper-half memory + MANA metadata into a per-rank image.
//! 4. Wait for `Resume` (continue running) or `Exit` (checkpoint-and-kill;
//!    restart will rebuild a fresh lower half).
//!
//! Restart rebuilds communicators from the **active list** — group
//! membership alone suffices (§III-C) — or, in the ablation baseline,
//! replays every logged constructor including freed communicators.

use crate::collective_emu::CollOpMeta;
use crate::comm_mgr::{CommManager, CommMeta};
use crate::config::{CommRestore, ManaConfig};
use crate::coordinator::{CoordHandle, CoordMsg, RankMsg};
use crate::error::{ManaError, Result};
use crate::ids::{VComm, VCOMM_WORLD};
use crate::mana::Mana;
use crate::p2p_log::{DrainBuffer, DrainedMsg, P2pLog};
use crate::requests::{Binding, RequestManager, RequestMeta, StoredCompletion, VReqKind};
use mpisim::{fnv1a_usizes, Comm, Group, Proc, RReq, SrcSel, TagSel};
use obs::metrics as met;
use obs::{EventKind, FaultKind, Phase};
use splitproc::store;
use splitproc::{CkptImage, Decode, Encode, LowerHalf, Reader, UpperHalf};

/// Everything MANA saves alongside the upper half.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ManaMeta {
    /// Communicator records + replay log + emu sequence counters.
    pub comm: CommMeta,
    /// Virtual request table (restart-transformed bindings).
    pub reqs: RequestMeta,
    /// In-flight emulated collectives.
    pub collops: CollOpMeta,
    /// Drained-but-undelivered messages.
    pub drain_buf: DrainBuffer,
    /// One-sided windows (records + this rank's region contents).
    pub wins: crate::mana_win::WinMeta,
}

impl Encode for ManaMeta {
    fn encode(&self, out: &mut Vec<u8>) {
        self.comm.encode(out);
        self.reqs.encode(out);
        self.collops.encode(out);
        self.drain_buf.encode(out);
        self.wins.encode(out);
    }
}

impl Decode for ManaMeta {
    fn decode(r: &mut Reader<'_>) -> std::result::Result<Self, splitproc::CodecError> {
        Ok(ManaMeta {
            comm: CommMeta::decode(r)?,
            reqs: RequestMeta::decode(r)?,
            collops: CollOpMeta::decode(r)?,
            drain_buf: DrainBuffer::decode(r)?,
            wins: crate::mana_win::WinMeta::decode(r)?,
        })
    }
}

/// `MANA2_DEBUG=1` enables checkpoint-protocol tracing to stderr.
fn debug_enabled() -> bool {
    use std::sync::OnceLock;
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var("MANA2_DEBUG").is_ok())
}

impl<'p> Mana<'p> {
    /// The universal safe point. `at_step` marks an application step
    /// boundary ([`Mana::step_commit`]); in `exit_after_ckpt` mode only
    /// step boundaries act on intent, so restart re-enters the application
    /// at a committed step.
    pub(crate) fn maybe_checkpoint(&mut self, at_step: bool) -> Result<()> {
        // Fault-plan checkpoint trigger: the chosen rank requests a round
        // once its wrapper-call counter crosses the plan's threshold. That
        // lands the intent at whatever the plan picked — possibly
        // mid-collective or with requests pending. Fires once, on the
        // first pass only (round 0): a restarted run resumes at round ≥ 1
        // and must not re-trigger forever.
        if let Some(fp) = self.cfg.fault.clone() {
            if !self.fault_triggered
                && self.round == 0
                && !self.in_ckpt
                && !self.exited
                && fp.should_trigger(self.rank(), self.stats.wrapper_calls)
            {
                self.fault_triggered = true;
                self.m_add(met::FAULTS_FIRED, 1);
                if let Some(r) = &self.rec {
                    r.event(
                        self.round as i64,
                        EventKind::FaultFired {
                            fault: FaultKind::Trigger,
                        },
                    );
                }
                self.coord.request_checkpoint()?;
            }
        }
        if !self.coord.intent() || self.in_ckpt || self.commit.ckpt_disabled() || self.exited {
            return Ok(());
        }
        if self.cfg.exit_after_ckpt && !at_step {
            return Ok(());
        }
        if debug_enabled() {
            eprintln!(
                "mana2: rank {} entering checkpoint (at_step={at_step})",
                self.rank()
            );
        }
        self.enter_checkpoint()
    }

    /// Report Ready, await Go, and run the checkpoint. Callers guarantee a
    /// coordinator round is (or is about to be) in progress: either the
    /// local intent flag was observed, or a consistent-cut agreement
    /// ([`Mana::step_commit`] in exit mode) established that *some* rank
    /// observed it — in which case the coordinator's quiesce is already
    /// waiting for this rank's Ready.
    pub(crate) fn enter_checkpoint(&mut self) -> Result<()> {
        self.in_ckpt = true;
        // The coordinator bumps its round counter only after commit/abort,
        // so during the intent window `coord.round()` is the round about
        // to run — the right label for the Intent span.
        let intent_round = self.coord.round() as i64;
        if let Some(r) = &self.rec {
            r.begin(intent_round, Phase::Intent);
        }
        let res = (|| {
            // Fault-plan ready stall: the chosen straggler stalls inside
            // the intent window, stretching the coordinator's quiesce the
            // way a slow rank would at scale (§III-J pressure). Stalling
            // goes through the engine parker (CoordHandle::stall) so a
            // coop worker slot is not held hostage for the duration.
            if let Some(d) = self
                .cfg
                .fault
                .as_ref()
                .and_then(|fp| fp.ready_stall(self.rank()))
            {
                self.m_add(met::FAULTS_FIRED, 1);
                if let Some(r) = &self.rec {
                    r.event(
                        intent_round,
                        EventKind::FaultFired {
                            fault: FaultKind::ReadyStall,
                        },
                    );
                }
                self.coord.stall(d);
            }
            self.coord.send(RankMsg::Ready {
                rank: self.rank(),
                in_collective: self.cur_collective_gid,
            })?;
            let round = loop {
                match self.coord.recv()? {
                    CoordMsg::Go { round } => break round,
                    other => {
                        debug_assert!(false, "unexpected while awaiting Go: {other:?}");
                    }
                }
            };
            if let Some(r) = &self.rec {
                r.end(round as i64, Phase::Intent);
            }
            self.checkpoint_body(round)
        })();
        self.in_ckpt = false;
        res
    }

    /// Drain + serialize + write + await resume/exit. The coordinator has
    /// already confirmed every rank is parked.
    pub(crate) fn checkpoint_body(&mut self, round: u64) -> Result<()> {
        // `self.round` counts *completed* rounds (so `Mana::round()` is
        // also "which pass is this" after a restart).
        self.round = round + 1;
        let sweeps_before = self.stats.drain_sweeps;
        // The quiesce protocol is pluggable: resolve the configured
        // strategy and time its whole quiesce (exchange + sweeps) into
        // the per-strategy histogram, so the protocols are directly
        // comparable from one metrics series.
        let strat = crate::drain_strategy::strategy_for(self.cfg.drain);
        let t_quiesce = std::time::Instant::now();
        strat.quiesce(self)?;
        self.m_observe(
            crate::drain_strategy::quiesce_hist(self.cfg.drain),
            t_quiesce.elapsed().as_nanos() as u64,
        );
        self.m_add(crate::drain_strategy::rounds_counter(self.cfg.drain), 1);
        self.stats
            .drain_sweeps_by_round
            .push((round, self.stats.drain_sweeps - sweeps_before));
        // The drain just claimed the network is empty for this rank and
        // every request is parked in a legal state — assert it before the
        // image is written, so a protocol bug fails the checkpoint instead
        // of poisoning the image.
        self.check_ckpt_invariants()?;
        // Serialize and write the image.
        let meta = ManaMeta {
            comm: self.comms.to_meta(),
            reqs: self.reqs.to_meta(),
            collops: self.collops.to_meta(),
            drain_buf: self.drain_buf.clone(),
            wins: self.wins_to_meta()?,
        };
        let image = CkptImage {
            rank: self.rank(),
            world_size: self.world_size(),
            round,
            upper: self.upper.to_bytes(),
            meta: meta.to_bytes(),
        };
        // Durable write into this round's generation directory. A seeded
        // storage fault (chaos) maps onto the store's injection point:
        // write errors surface here as CkptFailed; torn writes and bit
        // flips corrupt the file *after* the apparent success, so the
        // rank honestly reports Done and only restart-time validation
        // can catch them — exactly the failure mode the manifest CRCs
        // exist for.
        let write_fault = self
            .cfg
            .fault
            .as_ref()
            .and_then(|fp| fp.storage_fault(self.rank(), round))
            .map(|f| match f.kind {
                mpisim::StorageFaultKind::WriteError => {
                    store::WriteFault::Error { attempts: u32::MAX }
                }
                mpisim::StorageFaultKind::TornWrite => store::WriteFault::Torn { offset: f.offset },
                mpisim::StorageFaultKind::BitFlip => {
                    store::WriteFault::BitFlip { offset: f.offset }
                }
            });
        if debug_enabled() {
            eprintln!(
                "mana2: rank {} writing image for round {round} (fault={write_fault:?})",
                self.rank()
            );
        }
        if write_fault.is_some() {
            self.m_add(met::FAULTS_FIRED, 1);
        }
        if let Some(r) = &self.rec {
            r.begin(round as i64, Phase::ImageWrite);
        }
        let t_write = std::time::Instant::now();
        let wrote = store::write_image_traced(
            &self.cfg.ckpt_dir,
            &image,
            &self.cfg.store,
            write_fault.as_ref(),
            self.rec.as_ref(),
        );
        self.m_observe(met::STORE_WRITE_NS, t_write.elapsed().as_nanos() as u64);
        if let Some(r) = &self.rec {
            r.end(round as i64, Phase::ImageWrite);
        }
        let mut committing = false;
        match wrote {
            Ok(out) => {
                self.stats.ckpts += 1;
                // Logical vs physical: logical_bytes is layout-independent
                // (flat and chunked runs report identical image sizes);
                // physical_bytes is what actually hit the disk, so the gap
                // between the two counters is the dedup win.
                self.m_add(met::STORE_BYTES_WRITTEN, out.logical_bytes as u64);
                self.m_add(met::STORE_PHYSICAL_BYTES, out.physical_bytes as u64);
                self.m_add(met::STORE_WRITE_RETRIES, out.retries as u64);
                self.m_add(met::STORE_FSYNCS, out.fsyncs as u64);
                self.m_add(met::STORE_CHUNKS_WRITTEN, out.chunks_written as u64);
                self.m_add(met::STORE_CHUNKS_DEDUP, out.chunks_deduped as u64);
                self.m_add(met::STORE_FSYNC_BATCHES, out.fsync_batches as u64);
                self.coord.send(RankMsg::CkptDone {
                    rank: self.rank(),
                    image_bytes: out.bytes as u64,
                    image_crc: out.crc,
                    logical_bytes: out.logical_bytes as u64,
                })?;
                // The rank's half of the 2PC vote is in: everything from
                // here to the coordinator's verdict is commit latency.
                committing = true;
                if let Some(r) = &self.rec {
                    r.begin(round as i64, Phase::Commit);
                }
            }
            Err(e) => {
                self.coord.send(RankMsg::CkptFailed {
                    rank: self.rank(),
                    reason: e.to_string(),
                })?;
            }
        }
        let verdict = self.coord.recv()?;
        if committing {
            if let Some(r) = &self.rec {
                r.end(round as i64, Phase::Commit);
            }
        }
        match verdict {
            CoordMsg::Resume => {
                // Network empty + both sides agreed: counters restart from
                // zero consistently on every rank.
                self.p2p.reset();
                Ok(())
            }
            CoordMsg::Exit => {
                self.exited = true;
                Err(ManaError::CkptExit)
            }
            CoordMsg::AbortRound { .. } => {
                // Some rank's image write failed: the round did not
                // commit, the coordinator already scrapped the partial
                // generation. State is exactly as after Resume — the
                // drain completed globally before any rank reported, so
                // resetting p2p counters stays consistent on every rank.
                if let Some(r) = &self.rec {
                    r.begin(round as i64, Phase::AbortRound);
                    r.end(round as i64, Phase::AbortRound);
                }
                self.stats.ckpt_aborts += 1;
                self.p2p.reset();
                Ok(())
            }
            other => {
                debug_assert!(false, "unexpected after CkptDone: {other:?}");
                Err(ManaError::CoordinatorGone)
            }
        }
    }

    // ---- drain -------------------------------------------------------------

    /// One drain sweep against the `expected` per-peer byte claims: for
    /// each peer still owing bytes, (a) iprobe+recv unmatched messages on
    /// every active communicator, (b) test recorded pending `irecv`s (the
    /// message may already be claimed — §III-B), on both user requests
    /// and emulated-collective slots. Shared by every
    /// [`crate::drain_strategy::DrainStrategy`]; the coordinator strategy
    /// passes `u64::MAX` claims to sweep everything receivable.
    ///
    /// Deficits are recomputed *live* from the [`P2pLog`] before every
    /// probe — never trusted from a snapshot — so a message matched
    /// mid-sweep (e.g. by a posted receive tested in stage (b) of an
    /// earlier sweep) immediately retires the peer's claim and cannot be
    /// drained twice.
    pub(crate) fn drain_sweep(&mut self, expected: &[u64]) -> Result<bool> {
        let round = self.round as i64 - 1;
        let mut progress = false;
        // (a) Unmatched messages in the network.
        let active: Vec<(u64, Vec<usize>)> = self
            .comms
            .active_records()
            .iter()
            .map(|r| (r.vid, r.world_ranks.clone()))
            .collect();
        for (vid, ranks) in &active {
            let vc = VComm(*vid);
            let real = match self.comms.real(vc) {
                Some(r) => r,
                None => continue,
            };
            if !ranks.contains(&self.rank()) {
                continue;
            }
            for (local, &w) in ranks.iter().enumerate() {
                if w == self.rank() {
                    continue;
                }
                while self.p2p.deficit_from(expected, w) != 0 {
                    let st = self
                        .lh
                        .call(|p| p.iprobe(real, SrcSel::Rank(local), TagSel::Any))?;
                    let st = match st {
                        None => break,
                        Some(s) => s,
                    };
                    let (st2, data) = self
                        .lh
                        .call(|p| p.recv(real, SrcSel::Rank(local), TagSel::Tag(st.tag)))?;
                    self.p2p
                        .count_drained(w, data.len(), self.rec.as_ref(), round);
                    self.stats.drained_msgs += 1;
                    self.stats.drained_bytes += data.len() as u64;
                    self.m_add(met::DRAINED_MSGS, 1);
                    self.m_add(met::DRAINED_BYTES, data.len() as u64);
                    self.drain_buf.push(DrainedMsg {
                        vcomm: vc,
                        src_world: w,
                        tag: st2.tag,
                        payload: data,
                    });
                    progress = true;
                }
            }
        }
        // (b) Messages already claimed by posted receives: user requests…
        for vr in self.reqs.testable_recvs() {
            let (vcomm, raw) = match self.reqs.entry(vr) {
                Some(e) => match (&e.kind, &e.binding) {
                    (VReqKind::RecvP2p { vcomm, .. }, Binding::Real(raw)) => (*vcomm, *raw),
                    _ => continue,
                },
                None => continue,
            };
            if let Some(c) = self.lh.call(|p| p.test(RReq::from_raw(raw)))? {
                let ranks = self.ranks_of(vcomm)?;
                let src_world = *ranks
                    .get(c.status.source)
                    .ok_or(ManaError::InvalidVComm(vcomm.0))?;
                self.p2p
                    .count_drained(src_world, c.data.len(), self.rec.as_ref(), round);
                self.stats.drained_msgs += 1;
                self.stats.drained_bytes += c.data.len() as u64;
                self.m_add(met::DRAINED_MSGS, 1);
                self.m_add(met::DRAINED_BYTES, c.data.len() as u64);
                // Step one of two-step retirement: the user's address for
                // this request is unknown here, so park the completion.
                self.reqs.mark_null(
                    vr,
                    Some(StoredCompletion {
                        src_world,
                        tag: c.status.tag,
                        payload: c.data,
                    }),
                );
                progress = true;
            }
        }
        // … and emulated-collective slots (receive-only: advancing a state
        // machine could *send*, which would invalidate the exchanged
        // counts).
        for id in self.collops.sorted_ids() {
            let mut op = match self.collops.remove_for_poll(id) {
                Some(op) => op,
                None => continue,
            };
            let ranks = self.ranks_of(op.vcomm)?;
            for slot in &mut op.slots {
                if slot.data.is_some() {
                    continue;
                }
                let raw = match slot.real {
                    Some(r) => r,
                    None => continue,
                };
                if let Some(c) = self.lh.call(|p| p.test(RReq::from_raw(raw)))? {
                    let src_world = ranks[slot.src_local];
                    self.p2p
                        .count_drained(src_world, c.data.len(), self.rec.as_ref(), round);
                    self.stats.drained_msgs += 1;
                    self.stats.drained_bytes += c.data.len() as u64;
                    self.m_add(met::DRAINED_MSGS, 1);
                    self.m_add(met::DRAINED_BYTES, c.data.len() as u64);
                    slot.real = None;
                    slot.data = Some(c.data);
                    progress = true;
                }
            }
            self.collops.insert(op);
        }
        Ok(progress)
    }

    // ---- finalize -----------------------------------------------------------

    /// `MPI_Finalize` analog: a safe point, then a coordinated goodbye. If
    /// the coordinator is mid-quiesce, `Finishing` counts as `Ready` and
    /// this rank runs the checkpoint before retiring. Returns
    /// [`ManaError::CkptExit`] (after completing the goodbye handshake)
    /// when a checkpoint-and-kill landed here.
    pub fn finalize(&mut self) -> Result<()> {
        let mut ckpt_exit = self.exited;
        if !self.exited {
            match self.maybe_checkpoint(true) {
                Ok(()) => {}
                Err(ManaError::CkptExit) => ckpt_exit = true,
                Err(e) => return Err(e),
            }
        }
        loop {
            self.coord.send(RankMsg::Finishing { rank: self.rank() })?;
            match self.coord.recv()? {
                CoordMsg::FinishAck => {
                    return if ckpt_exit {
                        Err(ManaError::CkptExit)
                    } else {
                        Ok(())
                    }
                }
                CoordMsg::Go { round } => {
                    // A round started concurrently; we were counted Ready.
                    match self.checkpoint_body(round) {
                        Ok(()) => continue,
                        Err(ManaError::CkptExit) => {
                            ckpt_exit = true;
                            continue; // still say goodbye
                        }
                        Err(e) => return Err(e),
                    }
                }
                other => {
                    debug_assert!(false, "unexpected in finalize: {other:?}");
                    return Err(ManaError::CoordinatorGone);
                }
            }
        }
    }

    // ---- restart -------------------------------------------------------------

    /// Rebuild a rank from its checkpoint image on a fresh lower half.
    pub fn restore(
        proc: &'p Proc,
        cfg: ManaConfig,
        coord: CoordHandle,
        image: &CkptImage,
    ) -> Result<Self> {
        if image.world_size != proc.world_size() {
            return Err(ManaError::RestartMismatch(format!(
                "image world size {} vs runtime {}",
                image.world_size,
                proc.world_size()
            )));
        }
        if image.rank != proc.rank() {
            return Err(ManaError::RestartMismatch(format!(
                "image rank {} vs runtime {}",
                image.rank,
                proc.rank()
            )));
        }
        let upper = UpperHalf::from_bytes(&image.upper)?;
        let meta = ManaMeta::from_bytes(&image.meta)?;
        let lh = LowerHalf::new(proc, cfg.fs_mode);
        let mut comms = CommManager::from_meta(&meta.comm, cfg.vtable);
        let mut stats = crate::mana::ManaStats::default();
        let rec = cfg.trace.as_ref().map(|s| s.recorder(proc.rank() as i32));
        let meter = cfg.metrics.as_ref().map(|m| m.meter(proc.rank() as i32));
        if let Some(r) = &rec {
            r.begin(image.round as i64, Phase::RestoreComms);
        }

        // World first.
        comms.rebind(VCOMM_WORLD.0, Comm::WORLD);
        let me = proc.rank();
        match cfg.comm_restore {
            CommRestore::ActiveList => {
                // §III-C: only live communicators, straight from their
                // groups. vid order is creation order, consistent among
                // shared members.
                for rec in meta.comm.records.iter().filter(|r| !r.freed) {
                    if rec.vid == VCOMM_WORLD.0 || !rec.world_ranks.contains(&me) {
                        continue;
                    }
                    let group = Group::new(rec.world_ranks.clone())?;
                    let tag =
                        fnv1a_usizes(&[0x7E57A7_usize, rec.gid as usize, image.round as usize]);
                    let real = lh.call(|p| p.comm_create_from_group(&group, tag))?;
                    comms.rebind(rec.vid, real);
                    stats.restored_comms += 1;
                }
            }
            CommRestore::ReplayLog => {
                // Original MANA baseline: replay every constructor, freed
                // or not (freed ones are wasted work + table bloat).
                for call in &meta.comm.replay_log {
                    match call {
                        crate::comm_mgr::CommCall::Create { vid, world_ranks } => {
                            if !world_ranks.contains(&me) {
                                continue;
                            }
                            let group = Group::new(world_ranks.clone())?;
                            let gid = crate::comm_mgr::global_comm_id(world_ranks);
                            let tag =
                                fnv1a_usizes(&[0x7E57A7_usize, gid as usize, image.round as usize]);
                            let real = lh.call(|p| p.comm_create_from_group(&group, tag))?;
                            comms.rebind(*vid, real);
                            stats.replayed_calls += 1;
                            stats.restored_comms += 1;
                        }
                        crate::comm_mgr::CommCall::Free { .. } => {
                            stats.replayed_calls += 1;
                        }
                    }
                }
            }
        }

        if let Some(r) = &rec {
            r.end(image.round as i64, Phase::RestoreComms);
        }

        let mut mana = Mana {
            lh,
            comms,
            wins: crate::mana_win::WinManager::from_meta(&meta.wins, cfg.vtable),
            reqs: RequestManager::from_meta(&meta.reqs, cfg.vtable),
            collops: crate::collective_emu::CollOpTable::from_meta(&meta.collops),
            p2p: P2pLog::new(proc.world_size()),
            drain_buf: meta.drain_buf.clone(),
            upper,
            coord,
            commit: crate::callbacks::CommitState::new(),
            in_ckpt: false,
            exited: false,
            cur_collective_gid: None,
            round: image.round + 1,
            stats,
            fault_triggered: false,
            rec,
            meter,
            cfg,
        };
        mana.restore_wins(&meta.wins)?;
        Ok(mana)
    }
}
