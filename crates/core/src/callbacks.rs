//! Wrapper callback plumbing: lambda-style vs prepare/finish (paper §III-H).
//!
//! The original MANA built C++ lambdas inside hot MPI wrappers; the
//! compiler turned each into several extra call frames, a measurable cost
//! at VASP's collective rates. MANA-2.0 decomposed them into dedicated
//! `prepare`/`finish` functions. Both styles are implemented here behind
//! one dispatch point so the `ablation_callbacks` bench can measure the
//! difference: [`CallbackStyle::Lambda`] heap-allocates two boxed closures
//! per wrapper call and invokes them through fat pointers (the dynamic
//! dispatch + allocation analog of the extra frames);
//! [`CallbackStyle::Prepared`] calls static functions directly.

use std::cell::Cell;

/// Which wrapper-callback style is in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallbackStyle {
    /// Boxed-closure pre/post hooks per call (original MANA).
    Lambda,
    /// Direct static prepare/finish calls (MANA-2.0).
    Prepared,
}

/// Per-rank commit bookkeeping updated by every wrapper: how many wrapper
/// calls began/finished, and the checkpoint-disable depth (the
/// `DMTCP_PLUGIN_DISABLE_CKPT` nesting of the Fig. 1 skeleton).
#[derive(Debug, Default)]
pub struct CommitState {
    begun: Cell<u64>,
    finished: Cell<u64>,
    disable_depth: Cell<u32>,
}

impl CommitState {
    /// Fresh state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrapper calls begun.
    pub fn begun(&self) -> u64 {
        self.begun.get()
    }

    /// Wrapper calls finished.
    pub fn finished(&self) -> u64 {
        self.finished.get()
    }

    /// Is checkpointing currently disabled (inside a lower-half critical
    /// section)?
    pub fn ckpt_disabled(&self) -> bool {
        self.disable_depth.get() > 0
    }

    fn prepare(&self) {
        self.begun.set(self.begun.get() + 1);
        self.disable_depth.set(self.disable_depth.get() + 1);
    }

    fn finish(&self) {
        debug_assert!(self.disable_depth.get() > 0, "unbalanced commit finish");
        self.disable_depth.set(self.disable_depth.get() - 1);
        self.finished.set(self.finished.get() + 1);
    }

    /// Wrapper entry (`commit_begin` + `DMTCP_PLUGIN_DISABLE_CKPT` of the
    /// Fig. 1 skeleton), dispatched by style. Must be paired with
    /// [`CommitState::exit`].
    pub fn enter(&self, style: CallbackStyle) {
        match style {
            CallbackStyle::Prepared => self.prepare(),
            CallbackStyle::Lambda => {
                let pre: Box<dyn Fn() + '_> = Box::new(|| self.prepare());
                pre();
            }
        }
    }

    /// Wrapper exit (`DMTCP_PLUGIN_ENABLE_CKPT` + `commit_finish`).
    pub fn exit(&self, style: CallbackStyle) {
        match style {
            CallbackStyle::Prepared => self.finish(),
            CallbackStyle::Lambda => {
                let post: Box<dyn Fn() + '_> = Box::new(|| self.finish());
                post();
            }
        }
    }

    /// Run `body` bracketed by prepare/finish using the given style. This
    /// is the single dispatch point every MANA wrapper goes through.
    pub fn with_commit<R>(&self, style: CallbackStyle, body: impl FnOnce() -> R) -> R {
        match style {
            CallbackStyle::Prepared => {
                self.prepare();
                let r = body();
                self.finish();
                r
            }
            CallbackStyle::Lambda => {
                // Deliberately costly: two boxed closures per call, invoked
                // through dyn pointers — the frame/allocation overhead the
                // paper removed.
                let pre: Box<dyn Fn()> = Box::new(|| self.prepare());
                let post: Box<dyn Fn()> = Box::new(|| self.finish());
                pre();
                let r = body();
                post();
                r
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_styles_balance() {
        for style in [CallbackStyle::Lambda, CallbackStyle::Prepared] {
            let cs = CommitState::new();
            let out = cs.with_commit(style, || {
                assert!(cs.ckpt_disabled(), "ckpt must be disabled inside body");
                7
            });
            assert_eq!(out, 7);
            assert!(!cs.ckpt_disabled());
            assert_eq!(cs.begun(), 1);
            assert_eq!(cs.finished(), 1);
        }
    }

    #[test]
    fn nesting_tracks_depth() {
        let cs = CommitState::new();
        cs.with_commit(CallbackStyle::Prepared, || {
            cs.with_commit(CallbackStyle::Prepared, || {
                assert!(cs.ckpt_disabled());
            });
            assert!(cs.ckpt_disabled());
        });
        assert!(!cs.ckpt_disabled());
        assert_eq!(cs.begun(), 2);
    }

    #[test]
    fn lambda_style_is_not_cheaper() {
        // Sanity: both styles do the same bookkeeping.
        let a = CommitState::new();
        let b = CommitState::new();
        for _ in 0..100 {
            a.with_commit(CallbackStyle::Lambda, || ());
            b.with_commit(CallbackStyle::Prepared, || ());
        }
        assert_eq!(a.begun(), b.begun());
        assert_eq!(a.finished(), b.finished());
    }
}
