//! Virtual object handles (paper §II-C).
//!
//! A virtual ID is what the application stores in *its* memory; the
//! virtual→real mapping lives in MANA's tables. On restart the real
//! objects are gone (the lower half is rebuilt), the virtual IDs are not —
//! MANA simply rebinds them. Virtual IDs are therefore plain integers with
//! stable, serializable values.

use splitproc::{CodecError, Decode, Encode, Reader};

/// Virtual communicator handle stored in application memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VComm(pub u64);

/// `MPI_COMM_NULL`.
pub const VCOMM_NULL: VComm = VComm(0);
/// `MPI_COMM_WORLD` (pre-bound in every table).
pub const VCOMM_WORLD: VComm = VComm(1);

impl VComm {
    /// Is this the null communicator?
    pub fn is_null(self) -> bool {
        self == VCOMM_NULL
    }
}

/// Virtual request handle stored in application memory.
///
/// MANA-2.0's request-retirement algorithm (§III-A) overwrites the
/// application's request variable with [`VREQ_NULL`] once the request is
/// retired — wrappers here take `&mut VReq` for exactly that purpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReq(pub u64);

/// `MPI_REQUEST_NULL`.
pub const VREQ_NULL: VReq = VReq(0);

impl VReq {
    /// Is this the null request?
    pub fn is_null(self) -> bool {
        self == VREQ_NULL
    }
}

impl Encode for VComm {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}
impl Decode for VComm {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(VComm(u64::decode(r)?))
    }
}

impl Encode for VReq {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}
impl Decode for VReq {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(VReq(u64::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_predicates() {
        assert!(VCOMM_NULL.is_null());
        assert!(!VCOMM_WORLD.is_null());
        assert!(VREQ_NULL.is_null());
        assert!(!VReq(3).is_null());
    }

    #[test]
    fn codec_roundtrip() {
        let bytes = VComm(99).to_bytes();
        assert_eq!(VComm::from_bytes(&bytes).unwrap(), VComm(99));
        let bytes = VReq(7).to_bytes();
        assert_eq!(VReq::from_bytes(&bytes).unwrap(), VReq(7));
    }
}
