//! Fortran named-constant handling (paper §III-F).
//!
//! In MPI's Fortran bindings, named constants like `MPI_IN_PLACE` and
//! `MPI_STATUS_IGNORE` are *link-time addresses of unique storage
//! locations* inside the MPI library (Fortran common blocks), not
//! compile-time values. A Fortran call therefore passes MANA an opaque
//! address, and the wrapper must recognize "this address IS the constant"
//! and substitute the C-side sentinel before calling the lower half. The
//! original MANA mishandled corner cases here; MANA-2.0 links a small
//! discovery routine that learns the addresses at startup.
//!
//! The simulation is literal: [`FortranConstants`] allocates unique static
//! storage per constant (the "link step"), exposes their addresses, and
//! [`FortranConstants::classify`] performs the address-identity test the
//! MANA-2.0 wrapper does.

use std::sync::OnceLock;

/// C-side sentinel meanings of the Fortran named constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NamedConstant {
    /// `MPI_IN_PLACE`: the send buffer aliases the receive buffer.
    InPlace,
    /// `MPI_STATUS_IGNORE`: the caller does not want a status object.
    StatusIgnore,
    /// `MPI_STATUSES_IGNORE` (array form).
    StatusesIgnore,
    /// `MPI_BOTTOM`: absolute-address buffer origin.
    Bottom,
    /// `MPI_UNWEIGHTED` (topology calls).
    Unweighted,
}

/// All constants, for iteration in tests.
pub const ALL_CONSTANTS: [NamedConstant; 5] = [
    NamedConstant::InPlace,
    NamedConstant::StatusIgnore,
    NamedConstant::StatusesIgnore,
    NamedConstant::Bottom,
    NamedConstant::Unweighted,
];

/// The "common block": one unique storage cell per constant. Boxed and
/// leaked once so the addresses are stable for the process lifetime —
/// exactly the lifetime Fortran link-time constants have.
struct CommonBlock {
    cells: Vec<&'static u64>,
}

fn common_block() -> &'static CommonBlock {
    static BLOCK: OnceLock<CommonBlock> = OnceLock::new();
    BLOCK.get_or_init(|| CommonBlock {
        cells: ALL_CONSTANTS
            .iter()
            .enumerate()
            .map(|(i, _)| &*Box::leak(Box::new(0xF0F0_0000u64 + i as u64)))
            .collect(),
    })
}

/// Discovered addresses of the Fortran named constants — what MANA-2.0's
/// linked discovery routine produces at startup.
#[derive(Debug, Clone, Copy)]
pub struct FortranConstants {
    addrs: [usize; ALL_CONSTANTS.len()],
}

impl FortranConstants {
    /// Run the discovery routine (idempotent; addresses are process-stable).
    pub fn discover() -> Self {
        let block = common_block();
        let mut addrs = [0usize; ALL_CONSTANTS.len()];
        for (i, cell) in block.cells.iter().enumerate() {
            addrs[i] = *cell as *const u64 as usize;
        }
        FortranConstants { addrs }
    }

    /// The address a Fortran caller would pass for `c`.
    pub fn address_of(&self, c: NamedConstant) -> usize {
        self.addrs[c as usize]
    }

    /// The §III-F wrapper check: does this argument address denote a named
    /// constant? Returns the C-side meaning if so.
    pub fn classify(&self, addr: usize) -> Option<NamedConstant> {
        self.addrs
            .iter()
            .position(|&a| a == addr)
            .map(|i| ALL_CONSTANTS[i])
    }
}

/// A Fortran-style buffer argument after classification: either a real
/// buffer or a named constant to be handled specially.
#[derive(Debug, Clone, PartialEq)]
pub enum FortranArg<'a> {
    /// An ordinary data buffer.
    Buffer(&'a [f64]),
    /// A recognized named constant.
    Constant(NamedConstant),
}

/// Classify a raw (address, maybe-buffer) pair the way MANA's Fortran
/// wrapper shim does: address identity first, buffer otherwise.
pub fn classify_arg<'a>(
    fc: &FortranConstants,
    addr: usize,
    buffer: Option<&'a [f64]>,
) -> FortranArg<'a> {
    if let Some(c) = fc.classify(addr) {
        FortranArg::Constant(c)
    } else {
        FortranArg::Buffer(buffer.unwrap_or(&[]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_is_stable() {
        let a = FortranConstants::discover();
        let b = FortranConstants::discover();
        for c in ALL_CONSTANTS {
            assert_eq!(a.address_of(c), b.address_of(c));
        }
    }

    #[test]
    fn addresses_are_distinct_and_nonzero() {
        let fc = FortranConstants::discover();
        let mut seen = std::collections::HashSet::new();
        for c in ALL_CONSTANTS {
            let addr = fc.address_of(c);
            assert_ne!(addr, 0);
            assert!(seen.insert(addr), "duplicate address for {c:?}");
        }
    }

    #[test]
    fn classify_roundtrips() {
        let fc = FortranConstants::discover();
        for c in ALL_CONSTANTS {
            assert_eq!(fc.classify(fc.address_of(c)), Some(c));
        }
        // An ordinary stack address is not a constant.
        let local = 0u64;
        assert_eq!(fc.classify(&local as *const u64 as usize), None);
    }

    #[test]
    fn classify_arg_separates_constants_from_buffers() {
        let fc = FortranConstants::discover();
        let data = [1.0f64, 2.0];
        let got = classify_arg(&fc, data.as_ptr() as usize, Some(&data));
        assert_eq!(got, FortranArg::Buffer(&data[..]));
        let got = classify_arg(&fc, fc.address_of(NamedConstant::InPlace), Some(&data));
        assert_eq!(got, FortranArg::Constant(NamedConstant::InPlace));
    }
}
