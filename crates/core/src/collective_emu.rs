//! Point-to-point *emulated* collectives as resumable state machines
//! (paper §III-E, §III-J, §III-L).
//!
//! Two roles:
//!
//! 1. **Checkpoint-window collectives.** Inside the checkpoint window the
//!    hybrid 2PC replaces native collectives with these emulations: their
//!    traffic flows through MANA's *counted* p2p layer, so the drain
//!    algorithm accounts for every byte, and their state is a plain
//!    serializable struct, so a checkpoint can land mid-collective and the
//!    operation finishes after resume or restart. They also restore the
//!    MPI-standard "root need not wait" semantics whose loss caused the
//!    §III-E deadlock.
//! 2. **Non-blocking collectives** (`MPI_Ibarrier`, `MPI_Ibcast`,
//!    `MPI_Iallreduce`, …) are *always* emulated: the virtual request
//!    points at a [`CollOp`], `MPI_Test`/`MPI_Wait` advance it, and
//!    restart replays the incomplete ones — the log-and-replay algorithm
//!    of §III-A.
//!
//! The state machines are pure with respect to I/O: all sends/receives go
//! through the [`EmuIo`] trait, so they are unit-tested against an
//! in-memory mock before ever touching the MANA runtime.

use crate::error::Result;
use crate::ids::VComm;
use mpisim::{reduce_bytes, Datatype, ReduceOp};
use splitproc::{CodecError, Decode, Encode, Reader};
use std::collections::HashMap;

/// Base of the tag band MANA reserves for its own traffic. Application
/// tags must stay below this (wrappers enforce it).
pub const MANA_TAG_BASE: i32 = 1 << 28;

/// Emulated collective kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EmuKind {
    /// Dissemination barrier.
    Barrier = 0,
    /// Binomial-tree broadcast.
    Bcast = 1,
    /// Binomial-tree reduce.
    Reduce = 2,
    /// Reduce-to-0 + broadcast.
    Allreduce = 3,
    /// Direct gather to root.
    Gather = 4,
    /// Pairwise all-to-all.
    Alltoall = 5,
    /// Gather-to-0 + broadcast.
    Allgather = 6,
}

impl EmuKind {
    fn from_code(c: u8) -> Result<EmuKind> {
        Ok(match c {
            0 => EmuKind::Barrier,
            1 => EmuKind::Bcast,
            2 => EmuKind::Reduce,
            3 => EmuKind::Allreduce,
            4 => EmuKind::Gather,
            5 => EmuKind::Alltoall,
            6 => EmuKind::Allgather,
            t => return Err(CodecError::InvalidTag(t).into()),
        })
    }
}

/// Tag for one stage of an emulated collective: band base + kind + stage +
/// per-communicator sequence number. The real communicator context
/// disambiguates communicators; the sequence number disambiguates
/// successive collectives on the same communicator (all members call them
/// in the same order, so counters agree).
pub fn emu_tag(kind: EmuKind, stage: u8, seq: u64) -> i32 {
    MANA_TAG_BASE | ((kind as i32) << 20) | ((stage as i32 & 1) << 16) | ((seq as i32) & 0xFFFF)
}

/// A pending internal receive of a state machine. `real` holds a raw
/// lower-half request once posted; it is never serialized (real objects
/// die with the lower half) — after restart the slot re-posts lazily,
/// typically finding its payload in the drain buffer instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IRecvSlot {
    /// Source, local to the collective's communicator.
    pub src_local: usize,
    /// Exact tag.
    pub tag: i32,
    /// Posted lower-half request, if any (never serialized).
    pub real: Option<u64>,
    /// Completed payload.
    pub data: Option<Vec<u8>>,
}

impl IRecvSlot {
    /// Fresh unposted slot.
    pub fn new(src_local: usize, tag: i32) -> Self {
        IRecvSlot {
            src_local,
            tag,
            real: None,
            data: None,
        }
    }
}

/// I/O services a state machine needs; implemented by `Mana` (counted p2p
/// + drain-buffer-aware receives) and by the mock in tests.
pub trait EmuIo {
    /// My local rank in the collective's communicator.
    fn me(&self) -> usize;
    /// Communicator size.
    fn size(&self) -> usize;
    /// Send `data` to a local rank with an exact (reserved-band) tag.
    fn send(&mut self, dst_local: usize, tag: i32, data: &[u8]) -> Result<()>;
    /// Ensure the slot is posted and poll it once; fills `slot.data` and
    /// returns true when complete. Must check the drain buffer before the
    /// live network.
    fn poll_slot(&mut self, slot: &mut IRecvSlot) -> Result<bool>;
}

/// One in-flight emulated collective.
#[derive(Debug, Clone, PartialEq)]
pub struct CollOp {
    /// Stable ID (virtual requests reference it; survives restart).
    pub id: u64,
    /// The communicator (virtual — restart-stable).
    pub vcomm: VComm,
    /// Operation kind.
    pub kind: EmuKind,
    /// Per-communicator collective sequence number (tag component).
    pub seq: u64,
    /// Root (local rank), where applicable.
    pub root: usize,
    /// Element type for reductions.
    pub dt: Datatype,
    /// Reduction operator.
    pub op: ReduceOp,
    /// Composite stage (0 = reduce/gather part, 1 = bcast part).
    pub stage: u8,
    /// Progress within the stage (round / child index).
    pub phase: u32,
    /// Whether this phase's sends have been deposited (guards against
    /// double-sending when resuming after a checkpoint).
    pub sent_phase: bool,
    /// Working buffer (contribution → partial → result).
    pub acc: Vec<u8>,
    /// Input chunks (alltoall only).
    pub inputs: Vec<Vec<u8>>,
    /// Collected per-source chunks (gather/alltoall/allgather).
    pub collected: Vec<Option<Vec<u8>>>,
    /// Pending internal receives of the current phase.
    pub slots: Vec<IRecvSlot>,
    /// Completion flag.
    pub done: bool,
    /// Result for this rank (empty where MPI defines none).
    pub out: Vec<u8>,
}

impl CollOp {
    fn base(id: u64, vcomm: VComm, kind: EmuKind, seq: u64) -> CollOp {
        CollOp {
            id,
            vcomm,
            kind,
            seq,
            root: 0,
            dt: Datatype::U8,
            op: ReduceOp::Sum,
            stage: 0,
            phase: 0,
            sent_phase: false,
            acc: Vec::new(),
            inputs: Vec::new(),
            collected: Vec::new(),
            slots: Vec::new(),
            done: false,
            out: Vec::new(),
        }
    }

    /// New barrier.
    pub fn barrier(id: u64, vcomm: VComm, seq: u64) -> CollOp {
        Self::base(id, vcomm, EmuKind::Barrier, seq)
    }

    /// New broadcast; `data` is the message on the root, ignored elsewhere.
    pub fn bcast(id: u64, vcomm: VComm, seq: u64, root: usize, data: Vec<u8>) -> CollOp {
        let mut op = Self::base(id, vcomm, EmuKind::Bcast, seq);
        op.root = root;
        op.acc = data;
        op
    }

    /// New reduce to `root`.
    pub fn reduce(
        id: u64,
        vcomm: VComm,
        seq: u64,
        root: usize,
        dt: Datatype,
        rop: ReduceOp,
        contrib: Vec<u8>,
    ) -> CollOp {
        let mut op = Self::base(id, vcomm, EmuKind::Reduce, seq);
        op.root = root;
        op.dt = dt;
        op.op = rop;
        op.acc = contrib;
        op
    }

    /// New allreduce.
    pub fn allreduce(
        id: u64,
        vcomm: VComm,
        seq: u64,
        dt: Datatype,
        rop: ReduceOp,
        contrib: Vec<u8>,
    ) -> CollOp {
        let mut op = Self::base(id, vcomm, EmuKind::Allreduce, seq);
        op.dt = dt;
        op.op = rop;
        op.acc = contrib;
        op
    }

    /// New gather to `root`.
    pub fn gather(id: u64, vcomm: VComm, seq: u64, root: usize, contrib: Vec<u8>) -> CollOp {
        let mut op = Self::base(id, vcomm, EmuKind::Gather, seq);
        op.root = root;
        op.acc = contrib;
        op
    }

    /// New alltoall; `inputs[j]` goes to local rank `j`.
    pub fn alltoall(id: u64, vcomm: VComm, seq: u64, inputs: Vec<Vec<u8>>) -> CollOp {
        let mut op = Self::base(id, vcomm, EmuKind::Alltoall, seq);
        op.inputs = inputs;
        op
    }

    /// New allgather.
    pub fn allgather(id: u64, vcomm: VComm, seq: u64, contrib: Vec<u8>) -> CollOp {
        let mut op = Self::base(id, vcomm, EmuKind::Allgather, seq);
        op.acc = contrib;
        op
    }

    /// Advance the state machine one step. Returns `Ok(true)` when done.
    /// Safe to call repeatedly after completion.
    pub fn advance(&mut self, io: &mut dyn EmuIo) -> Result<bool> {
        if self.done {
            return Ok(true);
        }
        let done = match self.kind {
            EmuKind::Barrier => self.step_barrier(io)?,
            EmuKind::Bcast => self.step_bcast(io, 1)?,
            EmuKind::Reduce => {
                let fin = self.step_reduce(io, self.root, 0)?;
                if fin && io.me() == self.root {
                    self.out = self.acc.clone();
                }
                fin
            }
            EmuKind::Allreduce => {
                if self.stage == 0 && self.step_reduce(io, 0, 0)? {
                    self.next_stage();
                }
                if self.stage == 1 && self.step_bcast_from(io, 0, 1)? {
                    self.out = self.acc.clone();
                    true
                } else {
                    false
                }
            }
            EmuKind::Gather => {
                let fin = self.step_gather(io, self.root, 0)?;
                if fin && io.me() == self.root {
                    self.out = self.frame_collected(io.size());
                }
                fin
            }
            EmuKind::Alltoall => self.step_alltoall(io)?,
            EmuKind::Allgather => {
                if self.stage == 0 && self.step_gather(io, 0, 0)? {
                    if io.me() == 0 {
                        self.acc = self.frame_collected(io.size());
                    }
                    self.next_stage();
                }
                if self.stage == 1 && self.step_bcast_from(io, 0, 1)? {
                    self.out = self.acc.clone();
                    true
                } else {
                    false
                }
            }
        };
        if done {
            self.done = true;
            self.slots.clear();
        }
        Ok(done)
    }

    fn next_stage(&mut self) {
        self.stage += 1;
        self.phase = 0;
        self.sent_phase = false;
        self.slots.clear();
    }

    fn frame_collected(&mut self, n: usize) -> Vec<u8> {
        let chunks: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                self.collected
                    .get(i)
                    .and_then(|c| c.clone())
                    .unwrap_or_default()
            })
            .collect();
        mpisim::frame_chunks(&chunks)
    }

    fn step_barrier(&mut self, io: &mut dyn EmuIo) -> Result<bool> {
        let n = io.size();
        if n <= 1 {
            return Ok(true);
        }
        let me = io.me();
        let tag = emu_tag(EmuKind::Barrier, 0, self.seq);
        loop {
            let k = 1usize << self.phase;
            if k >= n {
                return Ok(true);
            }
            if !self.sent_phase {
                io.send((me + k) % n, tag, &[])?;
                self.sent_phase = true;
                self.slots = vec![IRecvSlot::new((me + n - k) % n, tag)];
            }
            if io.poll_slot(&mut self.slots[0])? {
                self.phase += 1;
                self.sent_phase = false;
                self.slots.clear();
            } else {
                return Ok(false);
            }
        }
    }

    /// Binomial bcast rooted at `self.root`.
    fn step_bcast(&mut self, io: &mut dyn EmuIo, stage_tag: u8) -> Result<bool> {
        self.step_bcast_from(io, self.root, stage_tag)
    }

    fn step_bcast_from(&mut self, io: &mut dyn EmuIo, root: usize, stage_tag: u8) -> Result<bool> {
        let n = io.size();
        let me = io.me();
        if n <= 1 {
            self.out = self.acc.clone();
            return Ok(true);
        }
        let tag = emu_tag(self.kind, stage_tag, self.seq);
        let relative = (me + n - root) % n;
        // Phase 0: non-roots receive from the parent.
        if relative != 0 && self.phase == 0 {
            if self.slots.is_empty() {
                let lowbit = relative & relative.wrapping_neg();
                let parent = ((relative - lowbit) + root) % n;
                self.slots.push(IRecvSlot::new(parent, tag));
            }
            if !io.poll_slot(&mut self.slots[0])? {
                return Ok(false);
            }
            self.acc = self.slots[0].data.take().unwrap_or_default();
            self.slots.clear();
            self.phase = 1;
        }
        // Phase 1: relay to children (all at once; sends are eager).
        if !self.sent_phase {
            let top = if relative == 0 {
                n.next_power_of_two()
            } else {
                relative & relative.wrapping_neg()
            };
            let mut mask = top >> 1;
            while mask > 0 {
                if relative + mask < n {
                    let child = (relative + mask + root) % n;
                    io.send(child, tag, &self.acc)?;
                }
                mask >>= 1;
            }
            self.sent_phase = true;
        }
        self.out = self.acc.clone();
        Ok(true)
    }

    /// Binomial reduce toward `root`; on completion the root's `acc` holds
    /// the result.
    fn step_reduce(&mut self, io: &mut dyn EmuIo, root: usize, stage_tag: u8) -> Result<bool> {
        let n = io.size();
        if n <= 1 {
            return Ok(true);
        }
        let me = io.me();
        let tag = emu_tag(self.kind, stage_tag, self.seq);
        let relative = (me + n - root) % n;
        // Child masks in ascending order: every mask below my low bit (or
        // unbounded for the root) whose child exists.
        let mut child_masks = Vec::new();
        let mut mask = 1usize;
        while mask < n {
            if relative & mask != 0 {
                break;
            }
            if relative + mask < n {
                child_masks.push(mask);
            }
            mask <<= 1;
        }
        while (self.phase as usize) < child_masks.len() {
            let m = child_masks[self.phase as usize];
            if self.slots.is_empty() {
                let child = (relative + m + root) % n;
                self.slots.push(IRecvSlot::new(child, tag));
            }
            if !io.poll_slot(&mut self.slots[0])? {
                return Ok(false);
            }
            let part = self.slots[0].data.take().unwrap_or_default();
            reduce_bytes(self.dt, self.op, &mut self.acc, &part)
                .map_err(crate::error::ManaError::Mpi)?;
            self.slots.clear();
            self.phase += 1;
        }
        if relative != 0 && !self.sent_phase {
            let lowbit = relative & relative.wrapping_neg();
            let parent = ((relative - lowbit) + root) % n;
            io.send(parent, tag, &self.acc)?;
            self.sent_phase = true;
        }
        Ok(true)
    }

    /// Direct gather to `root`: non-roots send once; the root polls one
    /// slot per peer (all posted up front, completed in any order).
    fn step_gather(&mut self, io: &mut dyn EmuIo, root: usize, stage_tag: u8) -> Result<bool> {
        let n = io.size();
        let me = io.me();
        let tag = emu_tag(self.kind, stage_tag, self.seq);
        if me != root {
            if !self.sent_phase {
                io.send(root, tag, &self.acc)?;
                self.sent_phase = true;
            }
            return Ok(true);
        }
        if self.collected.len() != n {
            self.collected = vec![None; n];
            self.collected[me] = Some(self.acc.clone());
            self.slots = (0..n)
                .filter(|&r| r != me)
                .map(|r| IRecvSlot::new(r, tag))
                .collect();
        }
        let mut all = true;
        for i in 0..self.slots.len() {
            if self.slots[i].data.is_none() && !io.poll_slot(&mut self.slots[i])? {
                all = false;
            }
        }
        if !all {
            return Ok(false);
        }
        for s in self.slots.drain(..) {
            self.collected[s.src_local] = Some(s.data.unwrap_or_default());
        }
        Ok(true)
    }

    fn step_alltoall(&mut self, io: &mut dyn EmuIo) -> Result<bool> {
        let n = io.size();
        let me = io.me();
        let tag = emu_tag(EmuKind::Alltoall, 0, self.seq);
        if self.collected.len() != n {
            self.collected = vec![None; n];
            self.collected[me] = Some(self.inputs.get(me).cloned().unwrap_or_default());
            self.slots = (0..n)
                .filter(|&r| r != me)
                .map(|r| IRecvSlot::new(r, tag))
                .collect();
        }
        if !self.sent_phase {
            for dst in 0..n {
                if dst != me {
                    let empty = Vec::new();
                    let chunk = self.inputs.get(dst).unwrap_or(&empty).clone();
                    io.send(dst, tag, &chunk)?;
                }
            }
            self.sent_phase = true;
        }
        let mut all = true;
        for i in 0..self.slots.len() {
            if self.slots[i].data.is_none() && !io.poll_slot(&mut self.slots[i])? {
                all = false;
            }
        }
        if !all {
            return Ok(false);
        }
        for s in self.slots.drain(..) {
            self.collected[s.src_local] = Some(s.data.unwrap_or_default());
        }
        self.out = self.frame_collected(n);
        Ok(true)
    }
}

/// Table of in-flight collective operations for one rank.
#[derive(Debug, Default)]
pub struct CollOpTable {
    ops: HashMap<u64, CollOp>,
    next_id: u64,
    completed: u64,
}

impl CollOpTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate an ID for a new op.
    pub fn next_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Insert an op under its ID.
    pub fn insert(&mut self, op: CollOp) {
        self.ops.insert(op.id, op);
    }

    /// Borrow an op.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut CollOp> {
        self.ops.get_mut(&id)
    }

    /// Borrow immutably.
    pub fn get(&self, id: u64) -> Option<&CollOp> {
        self.ops.get(&id)
    }

    /// Temporarily take an op out for polling (no lifecycle accounting);
    /// the caller re-inserts it afterwards.
    pub fn remove_for_poll(&mut self, id: u64) -> Option<CollOp> {
        self.ops.remove(&id)
    }

    /// Remove a completed op (immediate retirement, §III-A collective case).
    pub fn remove(&mut self, id: u64) -> Option<CollOp> {
        let op = self.ops.remove(&id);
        if op.is_some() {
            self.completed += 1;
        }
        op
    }

    /// Live op count.
    pub fn live(&self) -> usize {
        self.ops.len()
    }

    /// IDs in ascending order.
    pub fn sorted_ids(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.ops.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// (allocated, completed) counters.
    pub fn lifecycle(&self) -> (u64, u64) {
        (self.next_id, self.completed)
    }

    /// Serialize all live ops (restart transform: real bindings in slots
    /// are dropped by the slot codec).
    pub fn to_meta(&self) -> CollOpMeta {
        let mut ops: Vec<CollOp> = self.ops.values().cloned().collect();
        ops.sort_by_key(|o| o.id);
        CollOpMeta {
            ops,
            next_id: self.next_id,
            completed: self.completed,
        }
    }

    /// Rebuild from metadata.
    pub fn from_meta(meta: &CollOpMeta) -> Self {
        CollOpTable {
            ops: meta.ops.iter().map(|o| (o.id, o.clone())).collect(),
            next_id: meta.next_id,
            completed: meta.completed,
        }
    }
}

/// Serializable CollOp table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CollOpMeta {
    /// Live ops in id order.
    pub ops: Vec<CollOp>,
    /// ID allocator state.
    pub next_id: u64,
    /// Completed counter.
    pub completed: u64,
}

// ---- codec -------------------------------------------------------------

fn dt_code(dt: Datatype) -> u8 {
    match dt {
        Datatype::U8 => 0,
        Datatype::I32 => 1,
        Datatype::I64 => 2,
        Datatype::U64 => 3,
        Datatype::F32 => 4,
        Datatype::F64 => 5,
    }
}

fn dt_from(c: u8) -> Result<Datatype> {
    Ok(match c {
        0 => Datatype::U8,
        1 => Datatype::I32,
        2 => Datatype::I64,
        3 => Datatype::U64,
        4 => Datatype::F32,
        5 => Datatype::F64,
        t => return Err(CodecError::InvalidTag(t).into()),
    })
}

fn op_code(op: ReduceOp) -> u8 {
    match op {
        ReduceOp::Sum => 0,
        ReduceOp::Prod => 1,
        ReduceOp::Max => 2,
        ReduceOp::Min => 3,
        ReduceOp::Band => 4,
        ReduceOp::Bor => 5,
        ReduceOp::Bxor => 6,
        ReduceOp::Land => 7,
        ReduceOp::Lor => 8,
    }
}

fn op_from(c: u8) -> Result<ReduceOp> {
    Ok(match c {
        0 => ReduceOp::Sum,
        1 => ReduceOp::Prod,
        2 => ReduceOp::Max,
        3 => ReduceOp::Min,
        4 => ReduceOp::Band,
        5 => ReduceOp::Bor,
        6 => ReduceOp::Bxor,
        7 => ReduceOp::Land,
        8 => ReduceOp::Lor,
        t => return Err(CodecError::InvalidTag(t).into()),
    })
}

impl Encode for IRecvSlot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.src_local.encode(out);
        self.tag.encode(out);
        // `real` is intentionally dropped: lower-half handles die with the
        // lower half (split-process rule).
        self.data.encode(out);
    }
}

impl Decode for IRecvSlot {
    fn decode(r: &mut Reader<'_>) -> std::result::Result<Self, CodecError> {
        Ok(IRecvSlot {
            src_local: usize::decode(r)?,
            tag: i32::decode(r)?,
            real: None,
            data: Option::decode(r)?,
        })
    }
}

impl Encode for CollOp {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.vcomm.encode(out);
        (self.kind as u8).encode(out);
        self.seq.encode(out);
        self.root.encode(out);
        dt_code(self.dt).encode(out);
        op_code(self.op).encode(out);
        self.stage.encode(out);
        self.phase.encode(out);
        self.sent_phase.encode(out);
        self.acc.encode(out);
        self.inputs.encode(out);
        self.collected.encode(out);
        self.slots.encode(out);
        self.done.encode(out);
        self.out.encode(out);
    }
}

impl Decode for CollOp {
    fn decode(r: &mut Reader<'_>) -> std::result::Result<Self, CodecError> {
        Ok(CollOp {
            id: u64::decode(r)?,
            vcomm: VComm::decode(r)?,
            kind: EmuKind::from_code(u8::decode(r)?).map_err(|_| CodecError::InvalidTag(255))?,
            seq: u64::decode(r)?,
            root: usize::decode(r)?,
            dt: dt_from(u8::decode(r)?).map_err(|_| CodecError::InvalidTag(254))?,
            op: op_from(u8::decode(r)?).map_err(|_| CodecError::InvalidTag(253))?,
            stage: u8::decode(r)?,
            phase: u32::decode(r)?,
            sent_phase: bool::decode(r)?,
            acc: Vec::decode(r)?,
            inputs: Vec::decode(r)?,
            collected: Vec::decode(r)?,
            slots: Vec::decode(r)?,
            done: bool::decode(r)?,
            out: Vec::decode(r)?,
        })
    }
}

impl Encode for CollOpMeta {
    fn encode(&self, out: &mut Vec<u8>) {
        self.ops.encode(out);
        self.next_id.encode(out);
        self.completed.encode(out);
    }
}

impl Decode for CollOpMeta {
    fn decode(r: &mut Reader<'_>) -> std::result::Result<Self, CodecError> {
        Ok(CollOpMeta {
            ops: Vec::decode(r)?,
            next_id: u64::decode(r)?,
            completed: u64::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VCOMM_WORLD;
    use mpisim::encode_slice;
    use std::cell::RefCell;
    use std::collections::VecDeque;
    use std::rc::Rc;

    /// In-memory multi-rank fabric for driving state machines.
    #[derive(Default)]
    struct MockNet {
        boxes: RefCell<Boxes>,
    }

    /// (src, dst, tag) -> queued payloads.
    type Boxes = std::collections::HashMap<(usize, usize, i32), VecDeque<Vec<u8>>>;

    struct MockIo {
        me: usize,
        n: usize,
        net: Rc<MockNet>,
    }

    impl EmuIo for MockIo {
        fn me(&self) -> usize {
            self.me
        }
        fn size(&self) -> usize {
            self.n
        }
        fn send(&mut self, dst: usize, tag: i32, data: &[u8]) -> Result<()> {
            self.net
                .boxes
                .borrow_mut()
                .entry((self.me, dst, tag))
                .or_default()
                .push_back(data.to_vec());
            Ok(())
        }
        fn poll_slot(&mut self, slot: &mut IRecvSlot) -> Result<bool> {
            if slot.data.is_some() {
                return Ok(true);
            }
            let mut boxes = self.net.boxes.borrow_mut();
            if let Some(q) = boxes.get_mut(&(slot.src_local, self.me, slot.tag)) {
                if let Some(p) = q.pop_front() {
                    slot.data = Some(p);
                    return Ok(true);
                }
            }
            Ok(false)
        }
    }

    /// Drive all ranks' ops round-robin until everyone is done.
    fn drive(ops: &mut [CollOp], ios: &mut [MockIo]) {
        for _ in 0..10_000 {
            let mut all = true;
            for (op, io) in ops.iter_mut().zip(ios.iter_mut()) {
                if !op.advance(io).unwrap() {
                    all = false;
                }
            }
            if all {
                return;
            }
        }
        panic!("state machines did not converge");
    }

    fn world(n: usize) -> (Vec<MockIo>, Rc<MockNet>) {
        let net = Rc::new(MockNet::default());
        let ios = (0..n)
            .map(|me| MockIo {
                me,
                n,
                net: net.clone(),
            })
            .collect();
        (ios, net)
    }

    #[test]
    fn barrier_completes_all_sizes() {
        for n in [1, 2, 3, 4, 5, 8, 13] {
            let (mut ios, _) = world(n);
            let mut ops: Vec<CollOp> = (0..n).map(|_| CollOp::barrier(0, VCOMM_WORLD, 7)).collect();
            drive(&mut ops, &mut ios);
            assert!(ops.iter().all(|o| o.done), "n={n}");
        }
    }

    #[test]
    fn barrier_waits_for_stragglers() {
        let n = 4;
        let (mut ios, _) = world(n);
        let mut ops: Vec<CollOp> = (0..n).map(|_| CollOp::barrier(0, VCOMM_WORLD, 0)).collect();
        // Drive only ranks 0..3 (rank 3 is a straggler): nobody may finish.
        for _ in 0..100 {
            for i in 0..3 {
                ops[i].advance(&mut ios[i]).unwrap();
            }
        }
        assert!(
            ops[..3].iter().all(|o| !o.done),
            "barrier must not complete without the straggler"
        );
        drive(&mut ops, &mut ios);
        assert!(ops.iter().all(|o| o.done));
    }

    #[test]
    fn bcast_delivers_from_any_root() {
        for n in [2, 3, 6, 9] {
            for root in [0, n - 1, n / 2] {
                let (mut ios, _) = world(n);
                let payload = vec![9u8, 8, 7];
                let mut ops: Vec<CollOp> = (0..n)
                    .map(|me| {
                        let data = if me == root { payload.clone() } else { vec![] };
                        CollOp::bcast(0, VCOMM_WORLD, 3, root, data)
                    })
                    .collect();
                drive(&mut ops, &mut ios);
                for op in &ops {
                    assert_eq!(op.out, payload, "n={n} root={root}");
                }
            }
        }
    }

    #[test]
    fn root_bcast_finishes_without_receivers() {
        // The §III-E property: the root's bcast completes even if no other
        // rank ever advances.
        let n = 4;
        let (mut ios, _) = world(n);
        let mut op = CollOp::bcast(0, VCOMM_WORLD, 0, 0, vec![1]);
        assert!(op.advance(&mut ios[0]).unwrap(), "root must not block");
    }

    #[test]
    fn reduce_sums_to_root() {
        for n in [1, 2, 5, 8] {
            let root = n - 1;
            let (mut ios, _) = world(n);
            let mut ops: Vec<CollOp> = (0..n)
                .map(|me| {
                    CollOp::reduce(
                        0,
                        VCOMM_WORLD,
                        1,
                        root,
                        Datatype::I64,
                        ReduceOp::Sum,
                        encode_slice(&[me as i64, 1i64]),
                    )
                })
                .collect();
            drive(&mut ops, &mut ios);
            let expect: i64 = (0..n as i64).sum();
            let got = mpisim::decode_slice::<i64>(&ops[root].out).unwrap();
            assert_eq!(got, vec![expect, n as i64], "n={n}");
            for (me, op) in ops.iter().enumerate() {
                if me != root {
                    assert!(op.out.is_empty());
                }
            }
        }
    }

    #[test]
    fn allreduce_gives_everyone_the_max() {
        let n = 6;
        let (mut ios, _) = world(n);
        let mut ops: Vec<CollOp> = (0..n)
            .map(|me| {
                CollOp::allreduce(
                    0,
                    VCOMM_WORLD,
                    2,
                    Datatype::F64,
                    ReduceOp::Max,
                    encode_slice(&[me as f64 * 1.5]),
                )
            })
            .collect();
        drive(&mut ops, &mut ios);
        for op in &ops {
            assert_eq!(
                mpisim::decode_slice::<f64>(&op.out).unwrap(),
                vec![7.5],
                "everyone sees max"
            );
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let n = 5;
        let root = 2;
        let (mut ios, _) = world(n);
        let mut ops: Vec<CollOp> = (0..n)
            .map(|me| CollOp::gather(0, VCOMM_WORLD, 0, root, vec![me as u8; me + 1]))
            .collect();
        drive(&mut ops, &mut ios);
        let chunks = mpisim::unframe_chunks(&ops[root].out).unwrap();
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c, &vec![i as u8; i + 1]);
        }
    }

    #[test]
    fn alltoall_permutes() {
        let n = 4;
        let (mut ios, _) = world(n);
        let mut ops: Vec<CollOp> = (0..n)
            .map(|me| {
                let inputs: Vec<Vec<u8>> = (0..n).map(|j| vec![(me * 10 + j) as u8]).collect();
                CollOp::alltoall(0, VCOMM_WORLD, 0, inputs)
            })
            .collect();
        drive(&mut ops, &mut ios);
        for (me, op) in ops.iter().enumerate() {
            let chunks = mpisim::unframe_chunks(&op.out).unwrap();
            for (j, c) in chunks.iter().enumerate() {
                assert_eq!(c, &vec![(j * 10 + me) as u8], "me={me} j={j}");
            }
        }
    }

    #[test]
    fn allgather_everyone_gets_everything() {
        let n = 3;
        let (mut ios, _) = world(n);
        let mut ops: Vec<CollOp> = (0..n)
            .map(|me| CollOp::allgather(0, VCOMM_WORLD, 0, vec![me as u8 + 65]))
            .collect();
        drive(&mut ops, &mut ios);
        for op in &ops {
            let chunks = mpisim::unframe_chunks(&op.out).unwrap();
            assert_eq!(chunks, vec![vec![65u8], vec![66], vec![67]]);
        }
    }

    #[test]
    fn serialization_mid_flight_resumes() {
        // Interrupt a barrier mid-way, serialize, rebuild, and finish —
        // the restart path for in-flight non-blocking collectives.
        let n = 4;
        let (mut ios, _) = world(n);
        let mut ops: Vec<CollOp> = (0..n).map(|_| CollOp::barrier(0, VCOMM_WORLD, 5)).collect();
        // Partial drive: a few steps only.
        for _ in 0..2 {
            for (op, io) in ops.iter_mut().zip(ios.iter_mut()) {
                let _ = op.advance(io).unwrap();
            }
        }
        // Serialize & rebuild every rank's op ("restart": real handles drop,
        // the mock net — standing in for the drain buffer — retains bytes).
        let mut rebuilt: Vec<CollOp> = ops
            .iter()
            .map(|o| CollOp::from_bytes(&o.to_bytes()).unwrap())
            .collect();
        for (a, b) in ops.iter().zip(rebuilt.iter()) {
            assert_eq!(a.phase, b.phase);
            assert_eq!(a.sent_phase, b.sent_phase, "resume must not double-send");
        }
        drive(&mut rebuilt, &mut ios);
        assert!(rebuilt.iter().all(|o| o.done));
    }

    #[test]
    fn table_lifecycle() {
        let mut t = CollOpTable::new();
        let id = t.next_id();
        t.insert(CollOp::barrier(id, VCOMM_WORLD, 0));
        assert_eq!(t.live(), 1);
        assert!(t.get(id).is_some());
        t.remove(id).unwrap();
        assert_eq!(t.live(), 0);
        assert_eq!(t.lifecycle(), (1, 1));
    }

    #[test]
    fn table_meta_roundtrip() {
        let mut t = CollOpTable::new();
        let id = t.next_id();
        t.insert(CollOp::allreduce(
            id,
            VCOMM_WORLD,
            9,
            Datatype::F64,
            ReduceOp::Sum,
            encode_slice(&[1.0f64]),
        ));
        let meta = t.to_meta();
        let back = CollOpMeta::from_bytes(&meta.to_bytes()).unwrap();
        assert_eq!(back, meta);
        let t2 = CollOpTable::from_meta(&back);
        assert_eq!(t2.live(), 1);
        assert_eq!(t2.get(id).unwrap().seq, 9);
    }

    #[test]
    fn emu_tags_are_in_band_and_distinct() {
        let a = emu_tag(EmuKind::Barrier, 0, 1);
        let b = emu_tag(EmuKind::Barrier, 0, 2);
        let c = emu_tag(EmuKind::Bcast, 0, 1);
        let d = emu_tag(EmuKind::Allreduce, 1, 1);
        let e = emu_tag(EmuKind::Allreduce, 0, 1);
        for t in [a, b, c, d, e] {
            assert!(
                (MANA_TAG_BASE..mpisim::MAX_USER_TAG).contains(&t),
                "tag {t}"
            );
        }
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(d, e);
    }
}
