//! Pluggable quiesce protocols for the checkpoint window.
//!
//! The checkpoint drain — the step that pulls every in-flight message out
//! of the network before an image is written (paper §III-B) — used to be
//! hard-wired into `mana_ckpt`/`mana_coll`. It is now a [`DrainStrategy`]
//! with three implementations:
//!
//! * [`AlltoallDrain`] — MANA-2.0's protocol: one `MPI_Alltoall` of
//!   per-pair sent-byte rows, then purely local sweeps until the deficits
//!   reach zero.
//! * [`CoordinatorDrain`] — the original MANA baseline: global totals
//!   round-tripped through the centralized coordinator until they balance.
//! * [`TopoSortDrain`] — the 2024 follow-up (arXiv 2408.02218): each rank
//!   ships its sent/received rows to the coordinator once; the
//!   coordinator topologically orders the in-flight send→receive
//!   dependency graph and answers with each rank's exact expected-bytes
//!   column. The count exchange costs two coordinator messages per rank
//!   instead of the alltoall's O(n²) fabric traffic, and — because the
//!   quiesce never runs a collective — no collective-emulation machinery
//!   or pre-collective 2PC barrier is needed at all.
//!
//! Strategy selection is [`crate::config::ManaConfig::drain`], overridable
//! with `MANA2_DRAIN=alltoall|toposort|coordinator`.

use crate::config::{DrainMode, TpcMode};
use crate::coordinator::{CoordMsg, RankMsg};
use crate::error::{ManaError, Result};
use crate::ids::{VComm, VCOMM_WORLD};
use crate::mana::Mana;
use obs::metrics as met;
use obs::{EventKind, Phase};

/// A checkpoint-window quiesce protocol. `quiesce` runs after `Go` and
/// must return only when this rank's share of the network is empty (every
/// in-flight message addressed to it captured); `pre_collective` is the
/// strategy's hook in front of every blocking collective, where the
/// alltoall-family protocols place their `TpcMode::Original` barrier.
pub trait DrainStrategy: Sync {
    /// Stable short name (metrics/artifact label).
    fn name(&self) -> &'static str;

    /// Drain the network for this rank (called with every rank parked).
    fn quiesce(&self, m: &mut Mana<'_>) -> Result<()>;

    /// Hook before every blocking collective. The default honors the
    /// configured two-phase-commit mode: `TpcMode::Original` prepends the
    /// interruptible barrier, `Hybrid` does nothing.
    fn pre_collective(&self, m: &mut Mana<'_>, vc: VComm) -> Result<()> {
        if m.cfg.tpc == TpcMode::Original {
            m.tpc_barrier(vc)?;
        }
        Ok(())
    }
}

/// Resolve the configured [`DrainMode`] to its strategy implementation.
pub fn strategy_for(mode: DrainMode) -> &'static dyn DrainStrategy {
    match mode {
        DrainMode::Alltoall => &AlltoallDrain,
        DrainMode::Coordinator => &CoordinatorDrain,
        DrainMode::TopoSort => &TopoSortDrain,
    }
}

/// The per-strategy quiesce-latency histogram.
pub(crate) fn quiesce_hist(mode: DrainMode) -> met::MetricId {
    match mode {
        DrainMode::Alltoall => met::DRAIN_ALLTOALL_QUIESCE_NS,
        DrainMode::Coordinator => met::DRAIN_COORDINATOR_QUIESCE_NS,
        DrainMode::TopoSort => met::DRAIN_TOPOSORT_QUIESCE_NS,
    }
}

/// The per-strategy completed-quiesce counter.
pub(crate) fn rounds_counter(mode: DrainMode) -> met::MetricId {
    match mode {
        DrainMode::Alltoall => met::DRAIN_ROUNDS_ALLTOALL,
        DrainMode::Coordinator => met::DRAIN_ROUNDS_COORDINATOR,
        DrainMode::TopoSort => met::DRAIN_ROUNDS_TOPOSORT,
    }
}

/// Sweep until every per-peer deficit against `expected` reaches zero.
/// Shared by every strategy that knows its exact expected column
/// (`u64::MAX` entries model the coordinator drain's "everything
/// receivable" sweeps).
fn sweep_until_settled(m: &mut Mana<'_>, expected: &[u64]) -> Result<()> {
    let round = m.round as i64 - 1;
    let mut sweep = 0u32;
    loop {
        if m.p2p.deficits(expected).iter().all(|&d| d == 0) {
            return Ok(());
        }
        m.stats.drain_sweeps += 1;
        m.m_add(met::DRAIN_SWEEPS, 1);
        sweep += 1;
        if let Some(r) = &m.rec {
            r.begin(round, Phase::Drain { sweep });
        }
        let t = std::time::Instant::now();
        let progress = m.drain_sweep(expected)?;
        m.m_observe(met::DRAIN_SWEEP_NS, t.elapsed().as_nanos() as u64);
        if let Some(r) = &m.rec {
            r.end(round, Phase::Drain { sweep });
        }
        if !progress {
            // Nothing receivable this instant: the bytes are in transit
            // between another rank's send and our mailbox. Park briefly.
            m.lh.sched_park(m.cfg.poll_interval)?;
        }
    }
}

/// MANA-2.0 drain: one alltoall of sent rows, then purely local work.
pub struct AlltoallDrain;

impl DrainStrategy for AlltoallDrain {
    fn name(&self) -> &'static str {
        "alltoall"
    }

    fn quiesce(&self, m: &mut Mana<'_>) -> Result<()> {
        let round = m.round as i64 - 1;
        let world_real = m.real_comm(VCOMM_WORLD)?;
        let sent_row = m.p2p.sent_row().to_vec();
        if let Some(r) = &m.rec {
            r.begin(round, Phase::DrainExchange);
        }
        let expected = m.lh.call(|p| p.alltoall_u64(world_real, &sent_row))?;
        if let Some(r) = &m.rec {
            r.end(round, Phase::DrainExchange);
        }
        sweep_until_settled(m, &expected)
    }
}

/// Original MANA drain: totals through the coordinator, iterated until
/// global sent equals global received.
pub struct CoordinatorDrain;

impl DrainStrategy for CoordinatorDrain {
    fn name(&self) -> &'static str {
        "coordinator"
    }

    fn quiesce(&self, m: &mut Mana<'_>) -> Result<()> {
        let round = m.round as i64 - 1;
        let mut sweep = 0u32;
        loop {
            let (sent, recvd) = m.p2p.totals();
            if let Some(r) = &m.rec {
                r.begin(round, Phase::DrainExchange);
            }
            m.coord.send(RankMsg::DrainReport {
                rank: m.rank(),
                sent,
                recvd,
            })?;
            let verdict = m.coord.recv()?;
            if let Some(r) = &m.rec {
                r.end(round, Phase::DrainExchange);
            }
            match verdict {
                CoordMsg::DrainVerdict { balanced: true } => return Ok(()),
                CoordMsg::DrainVerdict { balanced: false } => {
                    m.stats.drain_sweeps += 1;
                    m.m_add(met::DRAIN_SWEEPS, 1);
                    sweep += 1;
                    if let Some(r) = &m.rec {
                        r.begin(round, Phase::Drain { sweep });
                    }
                    // No per-pair information: sweep everything receivable.
                    let all = vec![u64::MAX; m.world_size()];
                    let t = std::time::Instant::now();
                    let progress = m.drain_sweep(&all)?;
                    m.m_observe(met::DRAIN_SWEEP_NS, t.elapsed().as_nanos() as u64);
                    if let Some(r) = &m.rec {
                        r.end(round, Phase::Drain { sweep });
                    }
                    if !progress {
                        m.lh.sched_park(m.cfg.poll_interval)?;
                    }
                }
                other => {
                    debug_assert!(false, "unexpected drain reply: {other:?}");
                    return Err(ManaError::CoordinatorGone);
                }
            }
        }
    }
}

/// Topological-sort drain (arXiv 2408.02218): one rows→schedule round
/// trip through the coordinator, then the same local deficit sweeps as
/// the alltoall protocol against the exact expected column.
pub struct TopoSortDrain;

impl DrainStrategy for TopoSortDrain {
    fn name(&self) -> &'static str {
        "toposort"
    }

    fn quiesce(&self, m: &mut Mana<'_>) -> Result<()> {
        let round = m.round as i64 - 1;
        if let Some(r) = &m.rec {
            r.begin(round, Phase::DrainExchange);
        }
        m.coord.send(RankMsg::DrainRows {
            rank: m.rank(),
            sent: m.p2p.sent_row().to_vec(),
            recvd: m.p2p.recvd_row().to_vec(),
        })?;
        let (expected, order, edges, cyclic) = match m.coord.recv()? {
            CoordMsg::DrainSchedule {
                expected,
                order,
                edges,
                cyclic,
            } => (expected, order, edges, cyclic),
            other => {
                debug_assert!(false, "unexpected while awaiting schedule: {other:?}");
                return Err(ManaError::CoordinatorGone);
            }
        };
        if let Some(r) = &m.rec {
            r.end(round, Phase::DrainExchange);
            r.event(
                round,
                EventKind::DrainSchedule {
                    order,
                    edges,
                    cyclic,
                },
            );
        }
        sweep_until_settled(m, &expected)
    }

    /// Never a barrier: the topo-sort quiesce orders in-flight traffic
    /// from the `P2pLog` rows alone, so there is nothing for a phase-1
    /// barrier to synchronize — this is exactly the collective-emulation
    /// machinery the protocol exists to avoid, even under
    /// `TpcMode::Original`.
    fn pre_collective(&self, _m: &mut Mana<'_>, _vc: VComm) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names_match_modes() {
        for mode in [
            DrainMode::Alltoall,
            DrainMode::Coordinator,
            DrainMode::TopoSort,
        ] {
            assert_eq!(strategy_for(mode).name(), mode.name());
        }
    }

    #[test]
    fn per_strategy_metrics_are_distinct() {
        let modes = [
            DrainMode::Alltoall,
            DrainMode::Coordinator,
            DrainMode::TopoSort,
        ];
        for a in modes {
            for b in modes {
                if a != b {
                    assert_ne!(quiesce_hist(a), quiesce_hist(b));
                    assert_ne!(rounds_counter(a), rounds_counter(b));
                }
            }
        }
    }
}
