//! The `Mana` handle: the "stub MPI library" each rank links against
//! (paper §II-A, Fig. 1).
//!
//! Every public method is a MANA wrapper with the Fig. 1 skeleton:
//! commit-begin (callback style dispatch, checkpoint-disable), virtual→real
//! translation, `JUMP_TO_LOWER_HALF`, the real MPI call, return, re-enable,
//! commit-finish. Blocking point-to-point calls decompose into
//! non-blocking post + test loop (§III challenge 1) so a checkpoint can
//! never land inside a blocking lower-half call.

use crate::callbacks::CommitState;
use crate::collective_emu::{CollOpTable, EmuIo, IRecvSlot, MANA_TAG_BASE};
use crate::comm_mgr::CommManager;
use crate::config::ManaConfig;
use crate::coordinator::CoordHandle;
use crate::error::{ManaError, Result};
use crate::ids::{VComm, VReq, VCOMM_WORLD, VREQ_NULL};
use crate::mana_win::WinManager;
use crate::p2p_log::{src_to_world, DrainBuffer, P2pLog};
use crate::requests::{Binding, RequestManager, StoredCompletion, VReqKind};
use mpisim::{Comm, Completion, Proc, RReq, SrcSel, Status, TagSel};
use splitproc::{LowerHalf, UpperHalf};
use std::time::Duration;

/// Per-rank MANA runtime statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ManaStats {
    /// Total wrapper invocations.
    pub wrapper_calls: u64,
    /// Point-to-point sends issued.
    pub sends: u64,
    /// Point-to-point receives completed.
    pub recvs: u64,
    /// Blocking collective wrapper calls.
    pub collectives: u64,
    /// Collectives executed via the p2p emulation path.
    pub emu_collectives: u64,
    /// 2PC barriers executed.
    pub tpc_barriers: u64,
    /// Checkpoints taken by this rank.
    pub ckpts: u64,
    /// Checkpoint rounds that ended in `AbortRound` (some rank's image
    /// write failed; partial generation discarded, execution resumed).
    pub ckpt_aborts: u64,
    /// Messages captured by the drain.
    pub drained_msgs: u64,
    /// Bytes captured by the drain.
    pub drained_bytes: u64,
    /// Drain sweep iterations (process-lifetime total, kept for
    /// compatibility; see `drain_sweeps_by_round` for per-round counts).
    pub drain_sweeps: u64,
    /// Drain sweeps per checkpoint round, as `(round, sweeps)` in round
    /// order — the per-round visibility the lifetime total hides.
    pub drain_sweeps_by_round: Vec<(u64, u64)>,
    /// Communicators reconstructed at restart.
    pub restored_comms: u64,
    /// Constructor calls replayed at restart (ReplayLog mode).
    pub replayed_calls: u64,
    /// Nanoseconds spent on FS-register switches (from the lower half).
    pub fs_switch_ns: u64,
    /// Lower-half jumps.
    pub lh_jumps: u64,
}

impl ManaStats {
    /// The schedule-invariant projection of these stats: counters that are
    /// a pure function of the program and the seeded fault plan, not of
    /// thread interleaving or wall-clock timing. The dual-engine
    /// equivalence suite demands these match across execution engines.
    ///
    /// Excluded as timing-coupled: `wrapper_calls` (poll-style wrappers
    /// such as `test`/`probe` may run a timing-dependent number of times),
    /// the drain counters (`drained_msgs`/`drained_bytes`/`drain_sweeps*`
    /// depend on what happened to be in flight), `fs_switch_ns`, and
    /// `lh_jumps`.
    ///
    /// Note for checkpoint-and-exit runs: *where* the checkpoint lands in
    /// a non-trigger rank's call stream is itself schedule-dependent, so
    /// only the *sum* of this projection across the checkpoint leg and the
    /// restart leg is invariant, not each leg alone.
    pub fn schedule_invariant(&self) -> [(&'static str, u64); 9] {
        [
            ("sends", self.sends),
            ("recvs", self.recvs),
            ("collectives", self.collectives),
            ("emu_collectives", self.emu_collectives),
            ("tpc_barriers", self.tpc_barriers),
            ("ckpts", self.ckpts),
            ("ckpt_aborts", self.ckpt_aborts),
            ("restored_comms", self.restored_comms),
            ("replayed_calls", self.replayed_calls),
        ]
    }

    /// Serialize as a JSON object (hand-rolled — this repo carries no
    /// serde). `drain_sweeps_by_round` becomes an array of
    /// `{"round":r,"sweeps":s}` objects.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(512);
        let _ = write!(
            s,
            "{{\"wrapper_calls\":{},\"sends\":{},\"recvs\":{},\"collectives\":{},\"emu_collectives\":{},\"tpc_barriers\":{},\"ckpts\":{},\"ckpt_aborts\":{},\"drained_msgs\":{},\"drained_bytes\":{},\"drain_sweeps\":{},\"restored_comms\":{},\"replayed_calls\":{},\"fs_switch_ns\":{},\"lh_jumps\":{},\"drain_sweeps_by_round\":[",
            self.wrapper_calls,
            self.sends,
            self.recvs,
            self.collectives,
            self.emu_collectives,
            self.tpc_barriers,
            self.ckpts,
            self.ckpt_aborts,
            self.drained_msgs,
            self.drained_bytes,
            self.drain_sweeps,
            self.restored_comms,
            self.replayed_calls,
            self.fs_switch_ns,
            self.lh_jumps
        );
        for (i, (round, sweeps)) in self.drain_sweeps_by_round.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"round\":{round},\"sweeps\":{sweeps}}}");
        }
        s.push_str("]}");
        s
    }
}

/// The per-rank MANA handle. `'p` is the lifetime of the lower-half MPI
/// endpoint (one world launch).
pub struct Mana<'p> {
    pub(crate) lh: LowerHalf<'p>,
    pub(crate) cfg: ManaConfig,
    pub(crate) upper: UpperHalf,
    pub(crate) comms: CommManager,
    pub(crate) wins: WinManager,
    pub(crate) reqs: RequestManager,
    pub(crate) collops: CollOpTable,
    pub(crate) p2p: P2pLog,
    pub(crate) drain_buf: DrainBuffer,
    pub(crate) coord: CoordHandle,
    pub(crate) commit: CommitState,
    pub(crate) in_ckpt: bool,
    pub(crate) exited: bool,
    pub(crate) cur_collective_gid: Option<u64>,
    pub(crate) round: u64,
    pub(crate) stats: ManaStats,
    /// Whether this rank's fault-plan checkpoint trigger already fired
    /// (once per process lifetime; restarts reset it but the round guard
    /// keeps the trigger from re-firing).
    pub(crate) fault_triggered: bool,
    /// Flight-recorder handle for this rank (from `cfg.trace`).
    pub(crate) rec: Option<obs::Recorder>,
    /// Metrics-plane handle for this rank (from `cfg.metrics`).
    pub(crate) meter: Option<obs::metrics::Meter>,
}

impl<'p> Mana<'p> {
    /// Fresh start (no checkpoint image).
    pub fn fresh(proc: &'p Proc, cfg: ManaConfig, coord: CoordHandle) -> Self {
        let n = proc.world_size();
        let rec = cfg.trace.as_ref().map(|s| s.recorder(proc.rank() as i32));
        let meter = cfg.metrics.as_ref().map(|m| m.meter(proc.rank() as i32));
        Mana {
            lh: LowerHalf::new(proc, cfg.fs_mode),
            comms: CommManager::new(cfg.vtable, n),
            wins: WinManager::new(cfg.vtable),
            reqs: RequestManager::new(cfg.vtable),
            collops: CollOpTable::new(),
            p2p: P2pLog::new(n),
            drain_buf: DrainBuffer::new(),
            upper: UpperHalf::new(),
            coord,
            commit: CommitState::new(),
            in_ckpt: false,
            exited: false,
            cur_collective_gid: None,
            round: 0,
            stats: ManaStats::default(),
            fault_triggered: false,
            rec,
            meter,
            cfg,
        }
    }

    /// Bump a metrics-plane counter for this rank (no-op without a
    /// registry; one branch on the hot path).
    #[inline]
    pub(crate) fn m_add(&self, id: obs::metrics::MetricId, delta: u64) {
        if let Some(m) = &self.meter {
            m.add(id, delta);
        }
    }

    /// Record a metrics-plane latency observation for this rank.
    #[inline]
    pub(crate) fn m_observe(&self, id: obs::metrics::MetricId, ns: u64) {
        if let Some(m) = &self.meter {
            m.observe(id, ns);
        }
    }

    // ---- identity & state access ---------------------------------------

    /// World rank (identity lives in upper-half memory: no lower-half jump).
    pub fn rank(&self) -> usize {
        self.lh.rank()
    }

    /// World size.
    pub fn world_size(&self) -> usize {
        self.lh.world_size()
    }

    /// The world communicator.
    pub fn comm_world(&self) -> VComm {
        VCOMM_WORLD
    }

    /// Checkpointable application memory.
    pub fn upper(&self) -> &UpperHalf {
        &self.upper
    }

    /// Mutable checkpointable application memory.
    pub fn upper_mut(&mut self) -> &mut UpperHalf {
        &mut self.upper
    }

    /// Number of checkpoint rounds this rank has survived (0 before any
    /// checkpoint; after a restart it continues from the image's round).
    /// Applications use it to gate "first pass only" actions.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Is checkpoint intent currently raised (a round in progress)?
    pub fn ckpt_pending(&self) -> bool {
        self.coord.intent()
    }

    /// Snapshot of runtime statistics (merges lower-half counters).
    pub fn stats(&self) -> ManaStats {
        let mut s = self.stats.clone();
        s.fs_switch_ns = self.lh.total_switch_ns();
        s.lh_jumps = self.lh.jump_count();
        s
    }

    /// Live virtual-request count (§III-A growth metric).
    pub fn live_requests(&self) -> usize {
        self.reqs.live()
    }

    /// Live communicator bindings.
    pub fn live_comms(&self) -> usize {
        self.comms.live_bindings()
    }

    /// Buffered drained messages not yet delivered.
    pub fn drain_buffer_len(&self) -> usize {
        self.drain_buf.len()
    }

    /// The active configuration.
    pub fn config(&self) -> &ManaConfig {
        &self.cfg
    }

    // ---- communicator wrappers ------------------------------------------

    pub(crate) fn real_comm(&self, vc: VComm) -> Result<Comm> {
        self.comms.real(vc).ok_or(ManaError::InvalidVComm(vc.0))
    }

    pub(crate) fn ranks_of(&self, vc: VComm) -> Result<Vec<usize>> {
        self.comms
            .record(vc)
            .map(|r| r.world_ranks.clone())
            .ok_or(ManaError::InvalidVComm(vc.0))
    }

    /// `MPI_Comm_rank` — resolved from MANA's own record, no lower-half
    /// jump needed (a §III-I.3-style "answer locally" optimization).
    pub fn comm_rank(&self, vc: VComm) -> Result<usize> {
        let rec = self.comms.record(vc).ok_or(ManaError::InvalidVComm(vc.0))?;
        rec.world_ranks
            .iter()
            .position(|&w| w == self.rank())
            .ok_or(ManaError::InvalidVComm(vc.0))
    }

    /// `MPI_Comm_size` — likewise local.
    pub fn comm_size(&self, vc: VComm) -> Result<usize> {
        Ok(self
            .comms
            .record(vc)
            .ok_or(ManaError::InvalidVComm(vc.0))?
            .world_ranks
            .len())
    }

    /// `MPI_Comm_group` (as world ranks — the translate_group_ranks image).
    pub fn comm_group(&self, vc: VComm) -> Result<Vec<usize>> {
        self.ranks_of(vc)
    }

    /// The globally-unique communicator ID of §III-K.
    pub fn comm_gid(&self, vc: VComm) -> Result<u64> {
        Ok(self
            .comms
            .record(vc)
            .ok_or(ManaError::InvalidVComm(vc.0))?
            .gid)
    }

    /// `MPI_Comm_dup`.
    pub fn comm_dup(&mut self, vc: VComm) -> Result<VComm> {
        self.stats.wrapper_calls += 1;
        self.maybe_checkpoint(false)?;
        let style = self.cfg.callback_style;
        self.commit.enter(style);
        let real = self.real_comm(vc)?;
        let out = (|| {
            let new_real = self.lh.call(|p| p.comm_dup(real))?;
            let ranks = self.ranks_of(vc)?;
            Ok(self.comms.register(ranks, new_real))
        })();
        self.commit.exit(style);
        out
    }

    /// `MPI_Comm_split`. Color < 0 acts as `MPI_UNDEFINED`.
    pub fn comm_split(&mut self, vc: VComm, color: i32, key: i32) -> Result<Option<VComm>> {
        self.stats.wrapper_calls += 1;
        self.maybe_checkpoint(false)?;
        let style = self.cfg.callback_style;
        self.commit.enter(style);
        let real = self.real_comm(vc)?;
        let out = (|| match self.lh.call(|p| p.comm_split(real, color, key))? {
            None => Ok(None),
            Some(new_real) => {
                let ranks = self
                    .lh
                    .call(|p| p.group_of(new_real))?
                    .translate_all()
                    .to_vec();
                Ok(Some(self.comms.register(ranks, new_real)))
            }
        })();
        self.commit.exit(style);
        out
    }

    /// `MPI_Comm_free`: retires the virtual communicator (active-list
    /// removal, §III-C) and frees the real one.
    pub fn comm_free(&mut self, vc: VComm) -> Result<()> {
        self.stats.wrapper_calls += 1;
        let style = self.cfg.callback_style;
        self.commit.enter(style);
        let out = match self.comms.free(vc) {
            None => Err(ManaError::InvalidVComm(vc.0)),
            Some(real) => self.lh.call(|p| p.comm_free(real)).map_err(ManaError::Mpi),
        };
        self.commit.exit(style);
        out
    }

    // ---- point-to-point wrappers -----------------------------------------

    fn check_user_tag(tag: i32) -> Result<()> {
        if !(0..MANA_TAG_BASE).contains(&tag) {
            return Err(ManaError::ReservedTag(tag));
        }
        Ok(())
    }

    /// Translate an application tag selector for the lower half: wildcard
    /// receives must not capture MANA's reserved band.
    fn lower_tagsel(tag: TagSel) -> TagSel {
        match tag {
            TagSel::Any => TagSel::Below(MANA_TAG_BASE),
            other => other,
        }
    }

    /// `MPI_Isend`.
    pub fn isend(&mut self, vc: VComm, dst: usize, tag: i32, data: &[u8]) -> Result<VReq> {
        self.stats.wrapper_calls += 1;
        self.stats.sends += 1;
        Self::check_user_tag(tag)?;
        self.maybe_checkpoint(false)?;
        let style = self.cfg.callback_style;
        self.commit.enter(style);
        let out = (|| {
            let ranks = self.ranks_of(vc)?;
            let dst_world = *ranks.get(dst).ok_or(ManaError::InvalidVComm(vc.0))?;
            let real = self.real_comm(vc)?;
            self.p2p.count_send(dst_world, data.len());
            let rreq = self.lh.call(|p| p.isend(real, dst, tag, data))?;
            Ok(self.reqs.create(
                VReqKind::SendP2p {
                    dst_world,
                    tag,
                    len: data.len(),
                },
                Binding::Real(rreq.raw()),
            ))
        })();
        self.commit.exit(style);
        out
    }

    /// `MPI_Send`, decomposed into `MPI_Isend` + test loop (§III ch. 1).
    pub fn send(&mut self, vc: VComm, dst: usize, tag: i32, data: &[u8]) -> Result<()> {
        let mut r = self.isend(vc, dst, tag, data)?;
        self.wait(&mut r).map(|_| ())
    }

    /// `MPI_Irecv`. The drain buffer is consulted before the lower half:
    /// a message captured at the last checkpoint must be delivered before
    /// any live-network message from the same source (non-overtaking).
    pub fn irecv(&mut self, vc: VComm, src: SrcSel, tag: TagSel) -> Result<VReq> {
        self.stats.wrapper_calls += 1;
        if let TagSel::Tag(t) = tag {
            Self::check_user_tag(t)?;
        }
        self.maybe_checkpoint(false)?;
        let style = self.cfg.callback_style;
        self.commit.enter(style);
        let out = (|| {
            let ranks = self.ranks_of(vc)?;
            let src_world = src_to_world(&ranks, src).ok_or(ManaError::InvalidVComm(vc.0))?;
            let kind = VReqKind::RecvP2p {
                vcomm: vc,
                src_world,
                tag,
            };
            if let Some(m) = self
                .drain_buf
                .take_match(vc, src_world, Self::lower_tagsel(tag))
            {
                // Born retired (step one already done by the drain).
                return Ok(self.reqs.create(
                    kind,
                    Binding::NullPending(Some(StoredCompletion {
                        src_world: m.src_world,
                        tag: m.tag,
                        payload: m.payload,
                    })),
                ));
            }
            let real = self.real_comm(vc)?;
            let lower_tag = Self::lower_tagsel(tag);
            let rreq = self.lh.call(|p| p.irecv(real, src, lower_tag))?;
            Ok(self.reqs.create(kind, Binding::Real(rreq.raw())))
        })();
        self.commit.exit(style);
        out
    }

    /// `MPI_Recv` = `MPI_Irecv` + test loop.
    pub fn recv(&mut self, vc: VComm, src: SrcSel, tag: TagSel) -> Result<(Status, Vec<u8>)> {
        let mut r = self.irecv(vc, src, tag)?;
        let c = self.wait(&mut r)?;
        Ok((c.status, c.data))
    }

    /// `MPI_Test`. On completion the request is retired and the
    /// application's variable is overwritten with `MPI_REQUEST_NULL`
    /// (§III-A retirement).
    pub fn test(&mut self, req: &mut VReq) -> Result<Option<Completion>> {
        if req.is_null() {
            // MPI semantics: testing MPI_REQUEST_NULL succeeds with an
            // empty status.
            return Ok(Some(Completion {
                status: Status {
                    source: usize::MAX,
                    tag: 0,
                    len: 0,
                },
                data: Vec::new(),
            }));
        }
        self.stats.wrapper_calls += 1;
        self.maybe_checkpoint(false)?;
        let style = self.cfg.callback_style;
        self.commit.enter(style);
        let out = self.test_inner(req);
        self.commit.exit(style);
        out
    }

    fn test_inner(&mut self, req: &mut VReq) -> Result<Option<Completion>> {
        let entry = self.reqs.entry(*req).ok_or(ManaError::InvalidVReq(req.0))?;
        let kind = entry.kind.clone();
        let binding = entry.binding.clone();
        match (kind, binding) {
            // Step two of two-step retirement: observe the nulled binding,
            // hand over the parked completion, delete the entry.
            (kind, Binding::NullPending(stored)) => {
                self.reqs.retire(*req);
                if matches!(kind, VReqKind::RecvP2p { .. }) {
                    self.stats.recvs += 1;
                }
                let c = match stored {
                    None => Completion {
                        status: Status {
                            source: match kind {
                                VReqKind::SendP2p { dst_world, .. } => dst_world,
                                _ => usize::MAX,
                            },
                            tag: 0,
                            len: 0,
                        },
                        data: Vec::new(),
                    },
                    Some(sc) => {
                        let source = self.local_of(&kind, sc.src_world)?;
                        Completion {
                            status: Status {
                                source,
                                tag: sc.tag,
                                len: sc.payload.len(),
                            },
                            data: sc.payload,
                        }
                    }
                };
                *req = VREQ_NULL;
                Ok(Some(c))
            }
            (
                VReqKind::SendP2p {
                    dst_world,
                    tag,
                    len,
                },
                Binding::Real(raw),
            ) => {
                // Eager sends: the lower half completes them at post time.
                let res = self.lh.call(|p| p.test(RReq::from_raw(raw)))?;
                debug_assert!(res.is_some(), "eager send must be complete");
                self.reqs.retire(*req);
                *req = VREQ_NULL;
                Ok(Some(Completion {
                    status: Status {
                        source: dst_world,
                        tag,
                        len,
                    },
                    data: Vec::new(),
                }))
            }
            (VReqKind::RecvP2p { vcomm, .. }, Binding::Real(raw)) => {
                match self.lh.call(|p| p.test(RReq::from_raw(raw)))? {
                    None => Ok(None),
                    Some(c) => {
                        let ranks = self.ranks_of(vcomm)?;
                        let src_world = *ranks
                            .get(c.status.source)
                            .ok_or(ManaError::InvalidVComm(vcomm.0))?;
                        self.p2p.count_recv(src_world, c.data.len());
                        self.stats.recvs += 1;
                        self.reqs.retire(*req);
                        *req = VREQ_NULL;
                        Ok(Some(c))
                    }
                }
            }
            // After restart: the receive has no real request yet. Check the
            // drain buffer, else (re)post to the new lower half.
            (
                VReqKind::RecvP2p {
                    vcomm,
                    src_world,
                    tag,
                },
                Binding::Unbound,
            ) => {
                if let Some(m) =
                    self.drain_buf
                        .take_match(vcomm, src_world, Self::lower_tagsel(tag))
                {
                    self.reqs.retire(*req);
                    let source = self.local_in(vcomm, m.src_world)?;
                    *req = VREQ_NULL;
                    self.stats.recvs += 1;
                    return Ok(Some(Completion {
                        status: Status {
                            source,
                            tag: m.tag,
                            len: m.payload.len(),
                        },
                        data: m.payload,
                    }));
                }
                let real = self.real_comm(vcomm)?;
                let ranks = self.ranks_of(vcomm)?;
                let src_sel = match src_world {
                    None => SrcSel::Any,
                    Some(w) => SrcSel::Rank(
                        ranks
                            .iter()
                            .position(|&x| x == w)
                            .ok_or(ManaError::InvalidVComm(vcomm.0))?,
                    ),
                };
                let lower_tag = Self::lower_tagsel(tag);
                let rreq = self.lh.call(|p| p.irecv(real, src_sel, lower_tag))?;
                self.reqs.entry_mut(*req).expect("live").binding = Binding::Real(rreq.raw());
                Ok(None)
            }
            (VReqKind::Coll { op_id }, _) => {
                if self.poll_collop(op_id)? {
                    let op = self.collops.remove(op_id).expect("completed op");
                    // Log-and-replay case: retire immediately (§III-A).
                    self.reqs.retire(*req);
                    *req = VREQ_NULL;
                    Ok(Some(Completion {
                        status: Status {
                            source: usize::MAX,
                            tag: 0,
                            len: op.out.len(),
                        },
                        data: op.out,
                    }))
                } else {
                    Ok(None)
                }
            }
            (VReqKind::SendP2p { .. }, Binding::Unbound) => {
                unreachable!("sends are never unbound")
            }
        }
    }

    fn local_of(&self, kind: &VReqKind, src_world: usize) -> Result<usize> {
        match kind {
            VReqKind::RecvP2p { vcomm, .. } => self.local_in(*vcomm, src_world),
            _ => Ok(src_world),
        }
    }

    pub(crate) fn local_in(&self, vc: VComm, world: usize) -> Result<usize> {
        let rec = self.comms.record(vc).ok_or(ManaError::InvalidVComm(vc.0))?;
        rec.world_ranks
            .iter()
            .position(|&w| w == world)
            .ok_or(ManaError::InvalidVComm(vc.0))
    }

    /// `MPI_Wait`, decomposed into a loop around `MPI_Test` (§III ch. 1).
    pub fn wait(&mut self, req: &mut VReq) -> Result<Completion> {
        loop {
            if let Some(c) = self.test(req)? {
                return Ok(c);
            }
            self.lh.sched_park(self.cfg.poll_interval)?;
        }
    }

    /// `MPI_Waitall`.
    pub fn waitall(&mut self, reqs: &mut [VReq]) -> Result<Vec<Completion>> {
        let mut out = Vec::with_capacity(reqs.len());
        for r in reqs.iter_mut() {
            out.push(self.wait(r)?);
        }
        Ok(out)
    }

    /// `MPI_Iprobe`: drain buffer first, then the live network.
    pub fn iprobe(&mut self, vc: VComm, src: SrcSel, tag: TagSel) -> Result<Option<Status>> {
        self.stats.wrapper_calls += 1;
        self.maybe_checkpoint(false)?;
        let style = self.cfg.callback_style;
        self.commit.enter(style);
        let out = (|| {
            let ranks = self.ranks_of(vc)?;
            let src_world = src_to_world(&ranks, src).ok_or(ManaError::InvalidVComm(vc.0))?;
            if let Some(m) = self
                .drain_buf
                .peek_match(vc, src_world, Self::lower_tagsel(tag))
            {
                let source = ranks
                    .iter()
                    .position(|&w| w == m.src_world)
                    .ok_or(ManaError::InvalidVComm(vc.0))?;
                return Ok(Some(Status {
                    source,
                    tag: m.tag,
                    len: m.payload.len(),
                }));
            }
            let real = self.real_comm(vc)?;
            let lower_tag = Self::lower_tagsel(tag);
            Ok(self.lh.call(|p| p.iprobe(real, src, lower_tag))?)
        })();
        self.commit.exit(style);
        out
    }

    // ---- memory wrappers (MPI_Alloc_mem → malloc, §III item 2) -----------

    /// `MPI_Alloc_mem`: allocates checkpointable upper-half memory and
    /// returns a handle. The original call would reserve network-registered
    /// memory in the MPI library; MANA converts it to plain (checkpointed)
    /// allocation.
    pub fn alloc_mem(&mut self, len: usize) -> u64 {
        self.stats.wrapper_calls += 1;
        let id = self.collops.next_id() | (1 << 62); // distinct id space
        self.upper
            .write_segment(&format!("mana_mem_{id:016x}"), vec![0u8; len]);
        id
    }

    /// Access an `alloc_mem` region.
    pub fn mem(&self, handle: u64) -> Option<&[u8]> {
        self.upper.segment(&format!("mana_mem_{handle:016x}"))
    }

    /// Mutable access to an `alloc_mem` region.
    pub fn mem_mut(&mut self, handle: u64) -> &mut Vec<u8> {
        self.upper.segment_mut(&format!("mana_mem_{handle:016x}"))
    }

    /// `MPI_Free_mem`.
    pub fn free_mem(&mut self, handle: u64) -> bool {
        self.stats.wrapper_calls += 1;
        self.upper
            .remove_segment(&format!("mana_mem_{handle:016x}"))
    }

    // ---- compute & lifecycle ---------------------------------------------

    /// Run `units` of application compute, polling checkpoint intent
    /// between slices — the cooperative stand-in for DMTCP's
    /// signal-interrupted compute (see DESIGN.md substitutions; this is
    /// what lets a checkpoint begin while a straggler crunches, §III-J).
    pub fn compute(&mut self, units: u64) -> Result<()> {
        const SLICE: u64 = 4096;
        let mut left = units;
        loop {
            let c = left.min(SLICE);
            self.lh.compute_units(c);
            left -= c;
            self.maybe_checkpoint(false)?;
            if left == 0 {
                return Ok(());
            }
        }
    }

    /// Application step boundary. In `exit_after_ckpt` mode this is the
    /// *only* place a checkpoint is acted on, so restart can re-enter the
    /// application at a committed step (see DESIGN.md: cooperative-resume
    /// substitution for DMTCP's instruction-pointer restore).
    ///
    /// Exit mode needs a **consistent cut**: intent propagates
    /// asynchronously, so without agreement one rank could checkpoint at
    /// boundary *k* while a peer sails past it and blocks inside the next
    /// step's communication, deadlocking the quiesce. The boundary
    /// therefore runs a one-word allreduce-OR of each rank's local intent
    /// observation: all ranks checkpoint at this boundary, or none do.
    pub fn step_commit(&mut self) -> Result<()> {
        self.stats.wrapper_calls += 1;
        if !self.cfg.exit_after_ckpt {
            return self.maybe_checkpoint(false);
        }
        if self.exited {
            return Ok(());
        }
        let bit = (self.coord.intent() && !self.in_ckpt && !self.commit.ckpt_disabled()) as u64;
        let agreed = self.allreduce_t(crate::ids::VCOMM_WORLD, mpisim::ReduceOp::Lor, &[bit])?;
        if agreed[0] != 0 {
            self.enter_checkpoint()
        } else {
            Ok(())
        }
    }

    /// Ask the coordinator for a checkpoint (`dmtcp_command -c` analog)
    /// and wait (bounded) until the intent flag is visible, so the
    /// requesting rank cannot race past its own request. The checkpoint
    /// itself still happens at the next safe point.
    pub fn request_checkpoint(&mut self) -> Result<()> {
        self.coord.request_checkpoint()?;
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !self.coord.intent() && std::time::Instant::now() < deadline {
            // The coordinator unparks every rank when it raises intent, so
            // this park is event-driven, not a fixed-cadence poll.
            self.lh.sched_park(self.cfg.poll_interval)?;
        }
        Ok(())
    }

    /// Park briefly (used by application-level poll loops).
    pub fn park(&mut self, d: Duration) -> Result<()> {
        self.lh.sched_park(d)?;
        self.maybe_checkpoint(false)
    }

    /// `MPI_Abort` analog: poison the world so every peer unblocks with an
    /// error. The runtime calls this automatically when a rank's closure
    /// fails fatally.
    pub fn abort_world(&self) {
        self.lh.abort_world();
    }

    // ---- EmuIo plumbing ----------------------------------------------------

    /// Advance a collective state machine by one step; true when done.
    pub(crate) fn poll_collop(&mut self, op_id: u64) -> Result<bool> {
        let mut op = match self.collops.remove_for_poll(op_id) {
            Some(op) => op,
            None => return Err(ManaError::InvalidVReq(op_id)),
        };
        let ranks = self.ranks_of(op.vcomm)?;
        let me = self
            .local_in(op.vcomm, self.rank())
            .map_err(|_| ManaError::InvalidVComm(op.vcomm.0))?;
        let mut io = ManaEmuIo {
            mana: self,
            vcomm: op.vcomm,
            ranks: &ranks,
            me,
        };
        let res = op.advance(&mut io);
        let done = match res {
            Ok(d) => d,
            Err(e) => {
                self.collops.insert(op);
                return Err(e);
            }
        };
        self.collops.insert(op);
        Ok(done)
    }
}

/// [`EmuIo`] backed by the MANA counted p2p layer and drain buffer.
struct ManaEmuIo<'a, 'p> {
    mana: &'a mut Mana<'p>,
    vcomm: VComm,
    ranks: &'a [usize],
    me: usize,
}

impl EmuIo for ManaEmuIo<'_, '_> {
    fn me(&self) -> usize {
        self.me
    }

    fn size(&self) -> usize {
        self.ranks.len()
    }

    fn send(&mut self, dst_local: usize, tag: i32, data: &[u8]) -> Result<()> {
        let dst_world = self.ranks[dst_local];
        let real = self.mana.real_comm(self.vcomm)?;
        self.mana.p2p.count_send(dst_world, data.len());
        self.mana.lh.call(|p| -> mpisim::Result<()> {
            let r = p.isend(real, dst_local, tag, data)?;
            p.wait(r)?; // eager: completes immediately; frees the slot
            Ok(())
        })?;
        Ok(())
    }

    fn poll_slot(&mut self, slot: &mut IRecvSlot) -> Result<bool> {
        if slot.data.is_some() {
            return Ok(true);
        }
        let src_world = self.ranks[slot.src_local];
        // Drain buffer first: pre-checkpoint bytes live there.
        if let Some(m) =
            self.mana
                .drain_buf
                .take_match(self.vcomm, Some(src_world), TagSel::Tag(slot.tag))
        {
            slot.data = Some(m.payload);
            slot.real = None;
            return Ok(true);
        }
        let real = self.mana.real_comm(self.vcomm)?;
        if slot.real.is_none() {
            let src = SrcSel::Rank(slot.src_local);
            let tag = TagSel::Tag(slot.tag);
            let rreq = self.mana.lh.call(|p| p.irecv(real, src, tag))?;
            slot.real = Some(rreq.raw());
        }
        let raw = slot.real.unwrap();
        match self.mana.lh.call(|p| p.test(RReq::from_raw(raw)))? {
            None => Ok(false),
            Some(c) => {
                self.mana.p2p.count_recv(src_world, c.data.len());
                slot.real = None;
                slot.data = Some(c.data);
                Ok(true)
            }
        }
    }
}

impl Mana<'_> {
    /// `MPI_Waitany`: wait until one of the virtual requests completes;
    /// returns its index and completion. The completed entry in `reqs` is
    /// overwritten with `MPI_REQUEST_NULL` (§III-A retirement); the rest
    /// are untouched.
    pub fn waitany(&mut self, reqs: &mut [VReq]) -> Result<(usize, Completion)> {
        if reqs.is_empty() {
            return Err(ManaError::InvalidVReq(0));
        }
        loop {
            for (i, req) in reqs.iter_mut().enumerate() {
                if req.is_null() {
                    continue;
                }
                let mut r = *req;
                if let Some(c) = self.test(&mut r)? {
                    *req = r; // VREQ_NULL after retirement
                    return Ok((i, c));
                }
            }
            self.lh.sched_park(self.cfg.poll_interval)?;
        }
    }

    /// `MPI_Testall`: all-or-nothing completion check over virtual
    /// requests. On success every entry is retired and nulled.
    pub fn testall(&mut self, reqs: &mut [VReq]) -> Result<Option<Vec<Completion>>> {
        // Readiness probe without consuming (uses the non-destructive
        // lower-half `MPI_Request_get_status` for p2p; collectives are
        // advanced by one poll which is side-effect-safe).
        for r in reqs.iter() {
            if r.is_null() {
                continue;
            }
            let entry = self.reqs.entry(*r).ok_or(ManaError::InvalidVReq(r.0))?;
            let ready = match (&entry.kind, &entry.binding) {
                (_, Binding::NullPending(_)) => true,
                (VReqKind::SendP2p { .. }, _) => true,
                (VReqKind::RecvP2p { .. }, Binding::Real(raw)) => {
                    let raw = *raw;
                    self.lh
                        .call(|p| p.peek_status(RReq::from_raw(raw)))?
                        .is_some()
                }
                (VReqKind::RecvP2p { .. }, Binding::Unbound) => false,
                (VReqKind::Coll { op_id }, _) => {
                    let id = *op_id;
                    self.poll_collop(id)?
                }
            };
            if !ready {
                return Ok(None);
            }
        }
        let mut out = Vec::with_capacity(reqs.len());
        for r in reqs.iter_mut() {
            out.push(self.wait(r)?); // completes immediately
        }
        Ok(Some(out))
    }
}
