//! `ManaRuntime`: launches a world of MANA-wrapped ranks plus the
//! coordinator, runs an application closure on every rank, and harvests
//! outcomes, statistics, and checkpoint-round reports.
//!
//! A *restart* run is the split-process story end-to-end: a brand-new
//! world (fresh lower half), each rank rebuilt from its image
//! ([`crate::mana::Mana`]`::restore`), the same application closure
//! re-entered — it finds its position in upper-half memory and continues.

use crate::config::ManaConfig;
use crate::coordinator::{
    spawn_coordinator_ext, CkptTrigger, CommitCheck, CoordReport, CoordStore,
};
use crate::error::{ManaError, Result};
use crate::mana::{Mana, ManaStats};
use mpisim::{StatsSnapshot, World, WorldCfg};
use obs::metrics as met;
use splitproc::journal::{Journal, JournalStep};
use splitproc::store;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How one rank's application run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppOutcome<T> {
    /// The closure ran to completion.
    Finished(T),
    /// A checkpoint was written and the configuration requested
    /// exit-after-checkpoint; restart with [`ManaRuntime::run_restart`].
    Checkpointed,
}

impl<T> AppOutcome<T> {
    /// The finished value, if any.
    pub fn finished(self) -> Option<T> {
        match self {
            AppOutcome::Finished(v) => Some(v),
            AppOutcome::Checkpointed => None,
        }
    }

    /// Did this rank checkpoint-and-exit?
    pub fn is_checkpointed(&self) -> bool {
        matches!(self, AppOutcome::Checkpointed)
    }
}

/// What a restart run replaces. This is the restart *scope* — distinct
/// from [`crate::config::CommRestore`], which picks the communicator
/// *restoration strategy* used once the scope is decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestartMode {
    /// Rebuild every rank from the selected generation.
    Full,
    /// Replace only `failed` ranks from the newest committed generation
    /// whose *failed-rank* images validate. Survivor ranks re-enter the
    /// world with their images read leniently — a survivor whose on-disk
    /// image has since rotted cannot veto the restart — and communicators
    /// are rebuilt around them. Only the failed ranks' restores are
    /// journaled.
    Partial {
        /// The ranks being replaced (sorted, deduplicated).
        failed: Vec<usize>,
    },
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunReport<T> {
    /// Per-rank outcomes in rank order.
    pub outcomes: Vec<AppOutcome<T>>,
    /// Lower-half (network) statistics.
    pub world_stats: StatsSnapshot,
    /// Per-rank MANA statistics.
    pub rank_stats: Vec<ManaStats>,
    /// Coordinator report (one entry per checkpoint round).
    pub coord: CoordReport,
    /// For restart runs: the committed generation the world was rebuilt
    /// from (it may be older than the newest on disk if newer generations
    /// failed validation). `None` for fresh runs.
    pub restored_round: Option<u64>,
    /// For restart runs: the ranks whose images were store-validated and
    /// journaled as restored — every rank for a full restart, exactly the
    /// failed set for a partial one. `None` for fresh runs.
    pub restored_ranks: Option<Vec<usize>>,
    /// Final metrics snapshot of the run's registry (always present on a
    /// successful run; merged across every rank, the coordinator, and the
    /// process-level samplers).
    pub metrics: Option<met::MetricsSnapshot>,
}

impl<T> RunReport<T> {
    /// All ranks finished (no checkpoint-and-exit).
    pub fn all_finished(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| matches!(o, AppOutcome::Finished(_)))
    }

    /// All ranks checkpointed-and-exited.
    pub fn all_checkpointed(&self) -> bool {
        self.outcomes.iter().all(|o| o.is_checkpointed())
    }

    /// Finished values in rank order (panics on a checkpointed rank).
    pub fn values(self) -> Vec<T> {
        self.outcomes
            .into_iter()
            .map(|o| o.finished().expect("rank checkpointed, not finished"))
            .collect()
    }
}

/// Runtime failure.
#[derive(Debug)]
pub enum RuntimeError {
    /// The world itself failed (rank panic).
    World(String),
    /// A rank returned a MANA error.
    Rank(usize, ManaError),
    /// The tools-interface deadlock detector fired; the payload is the
    /// per-rank blocked-state report.
    Deadlock(String),
    /// The coordinator's commit-time invariant checker found the global
    /// quiesced state inconsistent (e.g. user traffic still in flight when
    /// a checkpoint round committed). The payload lists the violations.
    Invariant(String),
    /// Restart found no usable checkpoint generation (or the store itself
    /// failed); the payload names every rejected generation and why.
    Store(store::StoreError),
    /// An injected `RestartKill` fault (chaos testing) killed the restart
    /// at the given journal-step boundary. The journal on disk is exactly
    /// what a real mid-restart crash would leave behind; rerunning the
    /// restart resumes the open epoch from it.
    RestartKilled {
        /// The 0-based global journal-step boundary that died.
        step: u64,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::World(s) => write!(f, "world failure: {s}"),
            RuntimeError::Rank(r, e) => write!(f, "rank {r}: {e}"),
            RuntimeError::Deadlock(report) => write!(f, "deadlock detected:\n{report}"),
            RuntimeError::Invariant(s) => {
                write!(f, "checkpoint commit invariant violated: {s}")
            }
            RuntimeError::Store(e) => write!(f, "checkpoint store: {e}"),
            RuntimeError::RestartKilled { step } => {
                write!(
                    f,
                    "restart killed at journal-step boundary {step} (injected)"
                )
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Map a [`JournalStep`] to its flight-recorder payload.
fn obs_step(step: &JournalStep) -> (obs::RestartStep, i64) {
    match step {
        JournalStep::RestartIntent { .. } => (obs::RestartStep::Intent, -1),
        JournalStep::GenValidated { .. } => (obs::RestartStep::Validated, -1),
        JournalStep::RankRestored { rank } => (obs::RestartStep::RankRestored, *rank as i64),
        JournalStep::CommsRebuilt => (obs::RestartStep::CommsRebuilt, -1),
        JournalStep::RestartCommitted => (obs::RestartStep::Committed, -1),
    }
}

/// Shared restart-protocol state: the open journal, the epoch being
/// driven, and the injected kill point. One instance per restart run,
/// shared by the pre-spawn coordinator-side steps and every rank closure.
struct RestartGuard {
    journal: Mutex<Journal>,
    /// The restart epoch this run is driving (resumed or freshly opened).
    epoch: u64,
    /// Kill the restart at this journal-step boundary (chaos only).
    kill_at: Option<u64>,
    /// Global boundary counter. Each [`RestartGuard::step`] passes two
    /// boundaries — one before and one after the durable append — so a
    /// sweep over `kill_at` crashes the restart both just-before and
    /// just-after every record it would write.
    boundary: AtomicU64,
    /// Ranks still restoring; the last one to finish journals the
    /// world-level `CommsRebuilt` and `RestartCommitted` steps.
    remaining: AtomicUsize,
    trace: Option<Arc<obs::TraceSink>>,
    metrics: Arc<met::MetricsRegistry>,
    /// Partial (survivor-preserving) restart? Picks which restart
    /// counter/histogram the committed epoch lands in.
    partial: bool,
    /// When the restart preamble began; `RestartCommitted` observes the
    /// elapsed wall time as the restart-duration histogram sample.
    started: Instant,
}

impl RestartGuard {
    fn kill_point(&self, actor: i32) -> Result<()> {
        let Some(k) = self.kill_at else {
            return Ok(());
        };
        if self.boundary.fetch_add(1, Ordering::SeqCst) == k {
            self.metrics.add(actor, met::FAULTS_FIRED, 1);
            self.metrics.add(actor, met::RESTART_KILLS, 1);
            if let Some(s) = &self.trace {
                s.record(
                    actor,
                    obs::NO_ROUND,
                    obs::EventKind::FaultFired {
                        fault: obs::FaultKind::RestartKill,
                    },
                );
            }
            return Err(ManaError::RestartKilled { step: k });
        }
        Ok(())
    }

    /// Drive one protocol step: kill point, durable idempotent append,
    /// trace event, kill point. Returns whether the record was freshly
    /// written (`false` means a resumed restart found it already durable
    /// and skipped it — the step is never redone).
    fn step(&self, actor: i32, step: JournalStep) -> Result<bool> {
        self.kill_point(actor)?;
        let fresh = self
            .journal
            .lock()
            .expect("restart journal lock poisoned")
            .append(self.epoch, step.clone())
            .map_err(|e| ManaError::Image(splitproc::ImageError::Io(e)))?;
        if fresh {
            self.metrics.add(actor, met::JOURNAL_APPENDS, 1);
        }
        match &step {
            // A resumed restart re-restores the rank even when the record
            // was already durable, so the counter tracks work done this
            // run, not fresh journal records.
            JournalStep::RankRestored { .. } => {
                self.metrics.add(actor, met::RESTART_RANKS_RESTORED, 1);
            }
            JournalStep::RestartCommitted => {
                let ns = self.started.elapsed().as_nanos() as u64;
                if self.partial {
                    self.metrics.add(actor, met::RESTARTS_PARTIAL, 1);
                    self.metrics.observe(actor, met::RESTART_PARTIAL_NS, ns);
                } else {
                    self.metrics.add(actor, met::RESTARTS_FULL, 1);
                    self.metrics.observe(actor, met::RESTART_FULL_NS, ns);
                }
            }
            _ => {}
        }
        if let Some(s) = &self.trace {
            let (st, rank) = obs_step(&step);
            s.record(
                actor,
                obs::NO_ROUND,
                obs::EventKind::JournalAppend {
                    epoch: self.epoch,
                    step: st,
                    rank,
                    fresh,
                },
            );
        }
        self.kill_point(actor)?;
        Ok(fresh)
    }
}

/// Launch configuration for MANA-wrapped worlds.
pub struct ManaRuntime {
    n: usize,
    cfg: ManaConfig,
    world_cfg: WorldCfg,
}

impl ManaRuntime {
    /// Runtime for `n` ranks with default world settings.
    pub fn new(n: usize, cfg: ManaConfig) -> Self {
        ManaRuntime {
            n,
            cfg,
            world_cfg: WorldCfg::default(),
        }
    }

    /// Override the world (machine profile / watchdog) configuration.
    pub fn with_world_cfg(mut self, wc: WorldCfg) -> Self {
        self.world_cfg = wc;
        self
    }

    /// Select the execution engine for the world (overrides the
    /// `MANA2_ENGINE` default picked up by [`WorldCfg::default`]).
    pub fn with_engine(mut self, engine: mpisim::EngineKind) -> Self {
        self.world_cfg.engine = engine;
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.n
    }

    /// The MANA configuration.
    pub fn config(&self) -> &ManaConfig {
        &self.cfg
    }

    /// Fresh run: empty upper halves.
    pub fn run_fresh<T, F>(&self, f: F) -> std::result::Result<RunReport<T>, RuntimeError>
    where
        T: Send + 'static,
        F: Fn(&mut Mana<'_>) -> Result<T> + Send + Sync,
    {
        self.run_inner(None, f, None::<fn(CkptTrigger)>)
    }

    /// Fresh run with an external driver thread holding the checkpoint
    /// trigger (for time-based checkpoints, Fig. 3 style).
    pub fn run_fresh_driven<T, F, G>(
        &self,
        f: F,
        driver: G,
    ) -> std::result::Result<RunReport<T>, RuntimeError>
    where
        T: Send + 'static,
        F: Fn(&mut Mana<'_>) -> Result<T> + Send + Sync,
        G: FnOnce(CkptTrigger) + Send + 'static,
    {
        self.run_inner(None, f, Some(driver))
    }

    /// Restart run: each rank is rebuilt from its image in
    /// `cfg.ckpt_dir`, then `f` is re-entered. Every restart step is
    /// journaled (crash-safe, idempotent): if the process dies mid-restart
    /// — modeled by the chaos `RestartKill` fault — calling `run_restart`
    /// again resumes the open journal epoch instead of redoing completed
    /// steps.
    pub fn run_restart<T, F>(&self, f: F) -> std::result::Result<RunReport<T>, RuntimeError>
    where
        T: Send + 'static,
        F: Fn(&mut Mana<'_>) -> Result<T> + Send + Sync,
    {
        self.run_inner(Some(RestartMode::Full), f, None::<fn(CkptTrigger)>)
    }

    /// Partial (survivor-preserving) restart: only `failed` ranks must
    /// restore from pristine, store-validated images — a survivor whose
    /// on-disk image has rotted cannot veto generation selection.
    /// Communicators are rebuilt across the whole world, and only the
    /// failed ranks' restores are journaled as `RankRestored`.
    pub fn run_restart_partial<T, F>(
        &self,
        failed: &[usize],
        f: F,
    ) -> std::result::Result<RunReport<T>, RuntimeError>
    where
        T: Send + 'static,
        F: Fn(&mut Mana<'_>) -> Result<T> + Send + Sync,
    {
        let mut failed: Vec<usize> = failed.to_vec();
        failed.sort_unstable();
        failed.dedup();
        if failed.is_empty() {
            return Err(RuntimeError::World(
                "partial restart needs a non-empty failed-rank set".into(),
            ));
        }
        if let Some(&r) = failed.iter().find(|&&r| r >= self.n) {
            return Err(RuntimeError::World(format!(
                "partial restart of rank {r} in a {}-rank world",
                self.n
            )));
        }
        self.run_inner(
            Some(RestartMode::Partial { failed }),
            f,
            None::<fn(CkptTrigger)>,
        )
    }

    fn run_inner<T, F, G>(
        &self,
        restart: Option<RestartMode>,
        f: F,
        driver: Option<G>,
    ) -> std::result::Result<RunReport<T>, RuntimeError>
    where
        T: Send + 'static,
        F: Fn(&mut Mana<'_>) -> Result<T> + Send + Sync,
        G: FnOnce(CkptTrigger) + Send + 'static,
    {
        // The run's metrics registry: the always-on plane every layer
        // below records into. A caller-supplied registry (cfg.metrics)
        // aggregates several runs into one series; otherwise the run gets
        // a fresh one and its final snapshot rides out in the RunReport.
        let reg = self
            .cfg
            .metrics
            .clone()
            .unwrap_or_else(|| met::MetricsRegistry::standard(self.n));
        // Escape hatch for overhead measurement only (`experiments
        // metrics` compares on/off): the registry still exists so reports
        // keep their shape, but no meter is handed out and no sampler or
        // exporter runs — the hot paths record nothing.
        let metrics_off = std::env::var("MANA2_METRICS_OFF").is_ok_and(|v| v != "0");
        // Restart: replay the journal and pick the generation *before*
        // spawning anything. Failing here is cheap; failing inside the
        // launched world is a mess.
        let prepared = match &restart {
            Some(mode) => Some(self.prepare_restart(mode, &reg)?),
            None => None,
        };
        let (selected, guard) = match prepared {
            Some((sel, g)) => (Some(sel), Some(g)),
            None => (None, None),
        };
        let restored_round = selected.as_ref().map(|s| s.round);
        let restored_ranks = restart.as_ref().map(|m| match m {
            RestartMode::Full => (0..self.n).collect::<Vec<_>>(),
            RestartMode::Partial { failed } => failed.clone(),
        });
        // The world must exist before the coordinator: the commit-time
        // invariant checker captures an introspection handle over it.
        let mut world_cfg = self.world_cfg.clone();
        if world_cfg.fault.is_none() {
            world_cfg.fault = self.cfg.fault.clone();
        }
        if world_cfg.trace.is_none() {
            if let Some(sink) = &self.cfg.trace {
                world_cfg.trace =
                    Some(crate::trace_adapter::FabricTraceAdapter::hook(sink.clone()));
            }
        }
        let world = World::new(self.n, world_cfg);
        let commit_check: CommitCheck = {
            let intro = world.introspect();
            Box::new(move |round| {
                let (msgs, bytes) = intro.user_in_flight();
                if msgs != 0 || bytes != 0 {
                    return Err(format!(
                        "round {round} committed with user traffic in flight: \
                         {msgs} message(s) / {bytes} byte(s)"
                    ));
                }
                Ok(())
            })
        };
        let (handles, trigger, coord_join) = spawn_coordinator_ext(
            self.n,
            self.cfg.exit_after_ckpt,
            self.cfg.fault.clone(),
            Some(commit_check),
            Some(CoordStore {
                root: self.cfg.ckpt_dir.clone(),
                retain: self.cfg.retain_generations,
                store: self.cfg.store.clone(),
            }),
            // Round numbers keep advancing across restarts so a new round
            // never reuses (and on abort, never deletes) the generation
            // directory of a previously committed round.
            restored_round.map(|r| r + 1).unwrap_or(0),
            self.cfg.trace.clone(),
            // Engine unparkers: the coordinator wakes ranks out of engine
            // parks on every control message and on intent raise.
            Some(world.unparkers()),
            (!metrics_off).then(|| reg.clone()),
        );
        // Process-level sampler: pulls engine counters (mpisim stays
        // metrics-agnostic) and the trace rings' drop count into the
        // registry. Runs on every exporter tick and once at run end, so
        // the final snapshot is current even without an exporter.
        let sample: Arc<dyn Fn(&met::MetricsRegistry) + Send + Sync> = if metrics_off {
            Arc::new(|_: &met::MetricsRegistry| {})
        } else {
            let engine = world.engine_metrics();
            let sink = self.cfg.trace.clone();
            // ENGINE_UNPARKS must stay a monotone counter in the registry,
            // so the sampler feeds it deltas of the engine's raw total.
            let prev_unparks = Mutex::new(0u64);
            Arc::new(move |reg: &met::MetricsRegistry| {
                let cur = engine.unparks.load(Ordering::Relaxed);
                let mut prev = prev_unparks.lock().expect("unpark sampler lock poisoned");
                if cur > *prev {
                    reg.add(met::PROCESS_ACTOR, met::ENGINE_UNPARKS, cur - *prev);
                    *prev = cur;
                }
                drop(prev);
                reg.gauge_set(
                    met::PROCESS_ACTOR,
                    met::ENGINE_READY_RANKS,
                    engine.ready_depth.load(Ordering::Relaxed),
                );
                if let Some(s) = &sink {
                    reg.gauge_set(met::PROCESS_ACTOR, met::TRACE_DROPPED_EVENTS, s.dropped());
                }
            })
        };
        // Live export is opt-in via MANA2_METRICS_DIR; the registry itself
        // is always on.
        let exporter = match std::env::var("MANA2_METRICS_DIR") {
            Ok(dir) if !dir.is_empty() && !metrics_off => {
                let interval = std::env::var("MANA2_METRICS_INTERVAL_MS")
                    .ok()
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(200)
                    .max(1);
                let meta = met::SeriesMeta {
                    label: obs::unique_label(if restart.is_some() {
                        "mana2_restart"
                    } else {
                        "mana2_run"
                    }),
                    ranks: self.n,
                    seed: self.cfg.fault.as_ref().map(|f| f.seed()),
                };
                let collect: Vec<met::Collector> = vec![Box::new({
                    let s = sample.clone();
                    move |r: &met::MetricsRegistry| s(r)
                })];
                match met::MetricsExporter::spawn(
                    reg.clone(),
                    std::path::Path::new(&dir),
                    meta,
                    std::time::Duration::from_millis(interval),
                    collect,
                ) {
                    Ok(ex) => Some(ex),
                    Err(e) => {
                        eprintln!("mana2: metrics exporter failed to start: {e}");
                        None
                    }
                }
            }
            _ => None,
        };
        let driver_join = driver.map(|d| {
            let t = trigger.clone();
            std::thread::spawn(move || d(t))
        });
        // Optional tools-interface deadlock detector (paper conclusion).
        let detector = self.cfg.deadlock_timeout.map(|window| {
            let intro = world.introspect();
            let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let stop2 = stop.clone();
            let handle = std::thread::spawn(move || -> Option<String> {
                use std::sync::atomic::Ordering;
                let slice = (window / 4).max(std::time::Duration::from_millis(10));
                let mut stuck_since: Option<std::time::Instant> = None;
                let mut last: Option<Vec<mpisim::RankActivity>> = None;
                loop {
                    // Sleep one sampling slice, but in small chunks: the
                    // teardown path joins this thread, so a coarse sleep
                    // would stall every run's shutdown by up to a slice.
                    let mut slept = std::time::Duration::ZERO;
                    while slept < slice {
                        if stop2.load(Ordering::Relaxed) {
                            return None;
                        }
                        let step = std::time::Duration::from_millis(20).min(slice - slept);
                        std::thread::sleep(step);
                        slept += step;
                    }
                    let snap = intro.activity();
                    let all_blocked = snap.iter().all(|a| a.blocked.is_some());
                    let unchanged = last.as_ref() == Some(&snap);
                    last = Some(snap.clone());
                    if all_blocked && unchanged {
                        let since = *stuck_since.get_or_insert_with(std::time::Instant::now);
                        if since.elapsed() >= window {
                            let report = snap
                                .iter()
                                .enumerate()
                                .map(|(r, a)| mpisim::describe(r, a))
                                .collect::<Vec<_>>()
                                .join("\n");
                            intro.poison();
                            return Some(report);
                        }
                    } else {
                        stuck_since = None;
                    }
                }
            });
            (stop, handle)
        });
        // The effective config the rank closures see always carries the
        // registry, so Mana::fresh/restore hand every rank a meter.
        let eff_cfg = {
            let mut c = self.cfg.clone();
            c.metrics = (!metrics_off).then(|| reg.clone());
            c
        };
        let cfg = &eff_cfg;
        let f = &f;
        let handles_ref = &handles;
        let selected_ref = &selected;
        let guard_ref = &guard;
        let restored_ranks_ref = &restored_ranks;
        let launched = world.launch(move |proc| -> Result<(AppOutcome<T>, ManaStats)> {
            let mut coord = handles_ref[proc.rank()].clone();
            // Route the control channel's blocking points through the
            // rank's engine parker: under the coop engine a rank waiting
            // on the coordinator must release its run token.
            coord.attach_parker(proc.parker());
            let mut mana = if let Some(sel) = selected_ref {
                let rank = proc.rank();
                // Layout-aware load: reads the flat `.mana` file when
                // present, else reassembles the rank's `.cref` recipe from
                // the chunk pool with per-chunk hash verification.
                let image = store::load_image(&sel.dir, rank).map_err(|e| {
                    let io = match e {
                        store::StoreError::Io(io) => io,
                        other => {
                            std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string())
                        }
                    };
                    ManaError::Image(splitproc::ImageError::Io(io))
                })?;
                let mana = Mana::restore(proc, cfg.clone(), coord, &image)?;
                if let Some(g) = guard_ref {
                    // Journal this rank's restore (only ranks in the
                    // restart scope — survivors of a partial restart are
                    // rebuilt but not journaled), and let the last rank in
                    // journal the world-level completion steps. An
                    // injected kill here must poison the world so peers
                    // fail fast instead of blocking on a rank that will
                    // never speak.
                    let journaled = restored_ranks_ref
                        .as_ref()
                        .is_some_and(|v| v.contains(&rank));
                    let res = (|| -> Result<()> {
                        if journaled {
                            g.step(rank as i32, JournalStep::RankRestored { rank: rank as u64 })?;
                        }
                        if g.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                            g.step(rank as i32, JournalStep::CommsRebuilt)?;
                            g.step(rank as i32, JournalStep::RestartCommitted)?;
                        }
                        Ok(())
                    })();
                    if let Err(e) = res {
                        mana.abort_world();
                        return Err(e);
                    }
                }
                mana
            } else {
                Mana::fresh(proc, cfg.clone(), coord)
            };
            let res = f(&mut mana);
            let outcome = match res {
                Ok(v) => match mana.finalize() {
                    Ok(()) => AppOutcome::Finished(v),
                    Err(ManaError::CkptExit) => AppOutcome::Checkpointed,
                    Err(e) => {
                        mana.abort_world();
                        return Err(e);
                    }
                },
                Err(ManaError::CkptExit) => {
                    match mana.finalize() {
                        Ok(()) | Err(ManaError::CkptExit) => {}
                        Err(e) => {
                            mana.abort_world();
                            return Err(e);
                        }
                    }
                    AppOutcome::Checkpointed
                }
                // A fatal application/MPI error: abort the world so peers
                // blocked on this rank fail fast instead of hanging
                // (MPI_ERRORS_ARE_FATAL behaviour).
                Err(e) => {
                    mana.abort_world();
                    return Err(e);
                }
            };
            Ok((outcome, mana.stats()))
        });
        // One final sample + exporter drain + merged snapshot, shared by
        // every exit path below (each path consumes the exporter once).
        fn final_snapshot(
            reg: &Arc<met::MetricsRegistry>,
            sample: &Arc<dyn Fn(&met::MetricsRegistry) + Send + Sync>,
            exporter: Option<met::MetricsExporter>,
        ) -> met::MetricsSnapshot {
            sample(reg);
            if let Some(ex) = exporter {
                if let Err(e) = ex.finish() {
                    eprintln!("mana2: metrics exporter finish failed: {e}");
                }
            }
            reg.snapshot()
        }
        let world_stats = world.stats();
        // Drop our coordinator senders so the coordinator unblocks even if
        // ranks errored before saying goodbye.
        drop(handles);
        drop(trigger);
        if let Some(j) = driver_join {
            let _ = j.join();
        }
        let deadlock_report = detector.and_then(|(stop, handle)| {
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            handle.join().ok().flatten()
        });
        if let Some(report) = deadlock_report {
            let _ = coord_join.join();
            let snap = final_snapshot(&reg, &sample, exporter);
            self.dump_trace("deadlock", Some(&snap));
            return Err(RuntimeError::Deadlock(report));
        }
        let results = match launched {
            Ok(r) => r,
            Err(e) => {
                let _ = coord_join.join();
                let snap = final_snapshot(&reg, &sample, exporter);
                self.dump_trace("world_fail", Some(&snap));
                return Err(RuntimeError::World(e.to_string()));
            }
        };
        let coord = match coord_join.join() {
            Ok(c) => c,
            Err(e) => {
                eprintln!("mana coordinator thread panicked: {e:?}");
                CoordReport::default()
            }
        };
        // An injected restart kill poisons the world, so peer ranks die of
        // secondary (fabric/coordinator) errors. Scan for the kill first
        // and report it, not the collateral. The kill only exists under an
        // armed chaos plan, but the flight dump (with its metrics sidecar)
        // is exactly what the chaos harness inspects afterwards, so it is
        // dumped like any other failure.
        if let Some(step) = results.iter().find_map(|r| match r {
            Err(ManaError::RestartKilled { step }) => Some(*step),
            _ => None,
        }) {
            let snap = final_snapshot(&reg, &sample, exporter);
            self.dump_trace("restart_kill", Some(&snap));
            return Err(RuntimeError::RestartKilled { step });
        }
        let mut outcomes = Vec::with_capacity(self.n);
        let mut rank_stats = Vec::with_capacity(self.n);
        for (rank, r) in results.into_iter().enumerate() {
            match r {
                Ok((o, s)) => {
                    outcomes.push(o);
                    rank_stats.push(s);
                }
                Err(e) => {
                    let snap = final_snapshot(&reg, &sample, exporter);
                    self.dump_trace("rank_fail", Some(&snap));
                    return Err(RuntimeError::Rank(rank, e));
                }
            }
        }
        // World-level restart roll-ups: comm restoration and call replay
        // happen per rank, but the counters read best as run totals.
        if restart.is_some() {
            let comms: u64 = rank_stats.iter().map(|s| s.restored_comms).sum();
            let replayed: u64 = rank_stats.iter().map(|s| s.replayed_calls).sum();
            reg.add(met::PROCESS_ACTOR, met::RESTART_COMMS_RESTORED, comms);
            reg.add(met::PROCESS_ACTOR, met::RESTART_REPLAYED_CALLS, replayed);
        }
        if !coord.invariant_violations.is_empty() {
            let snap = final_snapshot(&reg, &sample, exporter);
            self.dump_trace("invariant", Some(&snap));
            return Err(RuntimeError::Invariant(
                coord.invariant_violations.join("; "),
            ));
        }
        let metrics = Some(final_snapshot(&reg, &sample, exporter));
        Ok(RunReport {
            outcomes,
            world_stats,
            rank_stats,
            coord,
            restored_round,
            restored_ranks,
            metrics,
        })
    }

    /// Restart preamble, run before anything is spawned: replay the
    /// journal, resume the open epoch (or open a fresh one), select and
    /// validate the generation, and journal `RestartIntent` /
    /// `GenValidated`.
    fn prepare_restart(
        &self,
        mode: &RestartMode,
        reg: &Arc<met::MetricsRegistry>,
    ) -> std::result::Result<(store::Selected, Arc<RestartGuard>), RuntimeError> {
        let rec = self
            .cfg
            .trace
            .as_ref()
            .map(|s| s.recorder(obs::COORD_ACTOR));
        // Journal replay is its own phase on the coordinator's timeline: a
        // crash during a previous attempt leaves an open epoch that this
        // attempt resumes instead of redoing completed steps.
        if let Some(r) = &rec {
            r.begin(obs::NO_ROUND, obs::Phase::JournalReplay);
        }
        let journal = Journal::open(&self.cfg.ckpt_dir)
            .map_err(|e| RuntimeError::Store(store::StoreError::Io(e)))?;
        if journal.truncated_tail() > 0 {
            reg.add(obs::COORD_ACTOR, met::JOURNAL_TRUNCATIONS, 1);
        }
        let failed_u64: Vec<u64> = match mode {
            RestartMode::Full => Vec::new(),
            RestartMode::Partial { failed } => failed.iter().map(|&r| r as u64).collect(),
        };
        // Resume the open epoch only if it was attempting the same kind of
        // restart (same failed-rank set); a different scope supersedes it.
        let resume = journal.open_epoch().filter(|e| e.failed == failed_u64);
        let mut epoch = resume
            .as_ref()
            .map(|e| e.epoch)
            .unwrap_or_else(|| journal.next_epoch());
        if let Some(r) = &rec {
            r.end(obs::NO_ROUND, obs::Phase::JournalReplay);
        }
        // Generation scanning + manifest/CRC validation is its own restart
        // phase. A resumed epoch that already journaled `GenValidated`
        // re-validates that same generation (the open epoch pins it
        // against GC); if it has rotted anyway, the epoch is abandoned for
        // a fresh one rather than silently restoring a different
        // generation under an epoch that vouched for this one.
        if let Some(r) = &rec {
            r.begin(obs::NO_ROUND, obs::Phase::RestartValidate);
        }
        let only: Option<&[u64]> = match mode {
            RestartMode::Full => None,
            RestartMode::Partial { .. } => Some(&failed_u64),
        };
        let mut sel = None;
        if let Some(g) = resume.as_ref().and_then(|e| e.validated_gen) {
            let dir = store::generation_dir(&self.cfg.ckpt_dir, g);
            match store::validate_generation_ranks(&dir, g, Some(self.n), only) {
                Ok(manifest) => {
                    sel = Some(store::Selected {
                        round: g,
                        dir,
                        manifest,
                        rejected: Vec::new(),
                    });
                }
                Err(rej) => {
                    self.skip_generation(&rec, g, rej.code, &rej.reason);
                    epoch = journal.next_epoch();
                }
            }
        }
        let sel = match sel {
            Some(s) => Ok(s),
            None => store::select_generation_ranks(&self.cfg.ckpt_dir, Some(self.n), only),
        };
        if let Some(r) = &rec {
            r.end(obs::NO_ROUND, obs::Phase::RestartValidate);
        }
        let sel = match sel {
            Ok(sel) => {
                for rej in &sel.rejected {
                    self.skip_generation(&rec, rej.round, rej.code, &rej.reason);
                }
                sel
            }
            Err(e) => {
                self.dump_trace("store_fail", Some(&reg.snapshot()));
                return Err(RuntimeError::Store(e));
            }
        };
        let guard = Arc::new(RestartGuard {
            journal: Mutex::new(journal),
            epoch,
            kill_at: self.cfg.fault.as_ref().and_then(|p| p.restart_kill()),
            boundary: AtomicU64::new(0),
            remaining: AtomicUsize::new(self.n),
            trace: self.cfg.trace.clone(),
            metrics: reg.clone(),
            partial: matches!(mode, RestartMode::Partial { .. }),
            started: Instant::now(),
        });
        for step in [
            JournalStep::RestartIntent {
                gen: sel.round,
                failed: failed_u64.clone(),
            },
            JournalStep::GenValidated { gen: sel.round },
        ] {
            if let Err(e) = guard.step(obs::COORD_ACTOR, step) {
                let err = self.map_restart_err(e);
                if matches!(err, RuntimeError::RestartKilled { .. }) {
                    self.dump_trace("restart_kill", Some(&reg.snapshot()));
                }
                return Err(err);
            }
        }
        Ok((sel, guard))
    }

    /// A generation was rejected during restart validation. Not silent:
    /// it lands on stderr *and* as a `restart_skip` trace event so the
    /// fallback shows up in `mana2-trace` output.
    fn skip_generation(
        &self,
        rec: &Option<obs::Recorder>,
        gen: u64,
        code: obs::RejectCode,
        reason: &str,
    ) {
        eprintln!("mana2: restart skipping generation {gen}: {reason}");
        if let Some(r) = rec {
            r.event(obs::NO_ROUND, obs::EventKind::RestartSkip { gen, code });
        }
    }

    /// Map a pre-launch restart-step failure onto the runtime error space.
    fn map_restart_err(&self, e: ManaError) -> RuntimeError {
        match e {
            ManaError::RestartKilled { step } => RuntimeError::RestartKilled { step },
            ManaError::Image(splitproc::ImageError::Io(io)) => {
                RuntimeError::Store(store::StoreError::Io(io))
            }
            other => RuntimeError::Rank(0, other),
        }
    }

    /// Dump the flight recorder (JSONL + Chrome trace) on a runtime
    /// failure. Best-effort: the dump is diagnostic material, never a
    /// reason to mask the original error. The paths — and the fault-plan
    /// seed, recorded in the dump header — are printed to stderr so a
    /// failure report always says where its trace went.
    fn dump_trace(&self, what: &str, metrics: Option<&met::MetricsSnapshot>) {
        let Some(sink) = &self.cfg.trace else {
            return;
        };
        let dir = obs::default_trace_dir();
        let label = obs::unique_label(&format!("mana2_{what}"));
        let seed = self.cfg.fault.as_ref().map(|f| f.seed());
        match obs::flight_record_ext(sink, &dir, &label, seed, metrics) {
            Ok(d) => eprintln!(
                "mana2: flight recorder dumped {} events (seed {:?}): {} / {}",
                d.events,
                seed,
                d.jsonl.display(),
                d.chrome.display()
            ),
            Err(e) => eprintln!("mana2: flight recorder dump failed: {e}"),
        }
    }
}
