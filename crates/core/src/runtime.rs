//! `ManaRuntime`: launches a world of MANA-wrapped ranks plus the
//! coordinator, runs an application closure on every rank, and harvests
//! outcomes, statistics, and checkpoint-round reports.
//!
//! A *restart* run is the split-process story end-to-end: a brand-new
//! world (fresh lower half), each rank rebuilt from its image
//! ([`crate::mana::Mana`]`::restore`), the same application closure
//! re-entered — it finds its position in upper-half memory and continues.

use crate::config::ManaConfig;
use crate::coordinator::{
    spawn_coordinator_ext, CkptTrigger, CommitCheck, CoordReport, CoordStore,
};
use crate::error::{ManaError, Result};
use crate::mana::{Mana, ManaStats};
use mpisim::{StatsSnapshot, World, WorldCfg};
use splitproc::{store, CkptImage};
use std::fmt;

/// How one rank's application run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppOutcome<T> {
    /// The closure ran to completion.
    Finished(T),
    /// A checkpoint was written and the configuration requested
    /// exit-after-checkpoint; restart with [`ManaRuntime::run_restart`].
    Checkpointed,
}

impl<T> AppOutcome<T> {
    /// The finished value, if any.
    pub fn finished(self) -> Option<T> {
        match self {
            AppOutcome::Finished(v) => Some(v),
            AppOutcome::Checkpointed => None,
        }
    }

    /// Did this rank checkpoint-and-exit?
    pub fn is_checkpointed(&self) -> bool {
        matches!(self, AppOutcome::Checkpointed)
    }
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunReport<T> {
    /// Per-rank outcomes in rank order.
    pub outcomes: Vec<AppOutcome<T>>,
    /// Lower-half (network) statistics.
    pub world_stats: StatsSnapshot,
    /// Per-rank MANA statistics.
    pub rank_stats: Vec<ManaStats>,
    /// Coordinator report (one entry per checkpoint round).
    pub coord: CoordReport,
    /// For restart runs: the committed generation the world was rebuilt
    /// from (it may be older than the newest on disk if newer generations
    /// failed validation). `None` for fresh runs.
    pub restored_round: Option<u64>,
}

impl<T> RunReport<T> {
    /// All ranks finished (no checkpoint-and-exit).
    pub fn all_finished(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| matches!(o, AppOutcome::Finished(_)))
    }

    /// All ranks checkpointed-and-exited.
    pub fn all_checkpointed(&self) -> bool {
        self.outcomes.iter().all(|o| o.is_checkpointed())
    }

    /// Finished values in rank order (panics on a checkpointed rank).
    pub fn values(self) -> Vec<T> {
        self.outcomes
            .into_iter()
            .map(|o| o.finished().expect("rank checkpointed, not finished"))
            .collect()
    }
}

/// Runtime failure.
#[derive(Debug)]
pub enum RuntimeError {
    /// The world itself failed (rank panic).
    World(String),
    /// A rank returned a MANA error.
    Rank(usize, ManaError),
    /// The tools-interface deadlock detector fired; the payload is the
    /// per-rank blocked-state report.
    Deadlock(String),
    /// The coordinator's commit-time invariant checker found the global
    /// quiesced state inconsistent (e.g. user traffic still in flight when
    /// a checkpoint round committed). The payload lists the violations.
    Invariant(String),
    /// Restart found no usable checkpoint generation (or the store itself
    /// failed); the payload names every rejected generation and why.
    Store(store::StoreError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::World(s) => write!(f, "world failure: {s}"),
            RuntimeError::Rank(r, e) => write!(f, "rank {r}: {e}"),
            RuntimeError::Deadlock(report) => write!(f, "deadlock detected:\n{report}"),
            RuntimeError::Invariant(s) => {
                write!(f, "checkpoint commit invariant violated: {s}")
            }
            RuntimeError::Store(e) => write!(f, "checkpoint store: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Launch configuration for MANA-wrapped worlds.
pub struct ManaRuntime {
    n: usize,
    cfg: ManaConfig,
    world_cfg: WorldCfg,
}

impl ManaRuntime {
    /// Runtime for `n` ranks with default world settings.
    pub fn new(n: usize, cfg: ManaConfig) -> Self {
        ManaRuntime {
            n,
            cfg,
            world_cfg: WorldCfg::default(),
        }
    }

    /// Override the world (machine profile / watchdog) configuration.
    pub fn with_world_cfg(mut self, wc: WorldCfg) -> Self {
        self.world_cfg = wc;
        self
    }

    /// Select the execution engine for the world (overrides the
    /// `MANA2_ENGINE` default picked up by [`WorldCfg::default`]).
    pub fn with_engine(mut self, engine: mpisim::EngineKind) -> Self {
        self.world_cfg.engine = engine;
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.n
    }

    /// The MANA configuration.
    pub fn config(&self) -> &ManaConfig {
        &self.cfg
    }

    /// Fresh run: empty upper halves.
    pub fn run_fresh<T, F>(&self, f: F) -> std::result::Result<RunReport<T>, RuntimeError>
    where
        T: Send + 'static,
        F: Fn(&mut Mana<'_>) -> Result<T> + Send + Sync,
    {
        self.run_inner(false, f, None::<fn(CkptTrigger)>)
    }

    /// Fresh run with an external driver thread holding the checkpoint
    /// trigger (for time-based checkpoints, Fig. 3 style).
    pub fn run_fresh_driven<T, F, G>(
        &self,
        f: F,
        driver: G,
    ) -> std::result::Result<RunReport<T>, RuntimeError>
    where
        T: Send + 'static,
        F: Fn(&mut Mana<'_>) -> Result<T> + Send + Sync,
        G: FnOnce(CkptTrigger) + Send + 'static,
    {
        self.run_inner(false, f, Some(driver))
    }

    /// Restart run: each rank is rebuilt from its image in
    /// `cfg.ckpt_dir`, then `f` is re-entered.
    pub fn run_restart<T, F>(&self, f: F) -> std::result::Result<RunReport<T>, RuntimeError>
    where
        T: Send + 'static,
        F: Fn(&mut Mana<'_>) -> Result<T> + Send + Sync,
    {
        self.run_inner(true, f, None::<fn(CkptTrigger)>)
    }

    fn run_inner<T, F, G>(
        &self,
        restart: bool,
        f: F,
        driver: Option<G>,
    ) -> std::result::Result<RunReport<T>, RuntimeError>
    where
        T: Send + 'static,
        F: Fn(&mut Mana<'_>) -> Result<T> + Send + Sync,
        G: FnOnce(CkptTrigger) + Send + 'static,
    {
        // Restart: pick the generation *before* spawning anything — scan
        // newest-first, validate every rank image against the manifest,
        // fall back to the newest globally-complete generation. Failing
        // here is cheap; failing inside the launched world is a mess.
        let selected = if restart {
            // Generation scanning + manifest/CRC validation is its own
            // restart phase on the coordinator's timeline.
            let rec = self
                .cfg
                .trace
                .as_ref()
                .map(|s| s.recorder(obs::COORD_ACTOR));
            if let Some(r) = &rec {
                r.begin(obs::NO_ROUND, obs::Phase::RestartValidate);
            }
            let sel = store::select_generation(&self.cfg.ckpt_dir, Some(self.n));
            if let Some(r) = &rec {
                r.end(obs::NO_ROUND, obs::Phase::RestartValidate);
            }
            match sel {
                Ok(sel) => {
                    for rej in &sel.rejected {
                        eprintln!(
                            "mana2: restart skipping generation {}: {}",
                            rej.round, rej.reason
                        );
                    }
                    Some(sel)
                }
                Err(e) => {
                    self.dump_trace("store_fail");
                    return Err(RuntimeError::Store(e));
                }
            }
        } else {
            None
        };
        let restored_round = selected.as_ref().map(|s| s.round);
        // The world must exist before the coordinator: the commit-time
        // invariant checker captures an introspection handle over it.
        let mut world_cfg = self.world_cfg.clone();
        if world_cfg.fault.is_none() {
            world_cfg.fault = self.cfg.fault.clone();
        }
        if world_cfg.trace.is_none() {
            if let Some(sink) = &self.cfg.trace {
                world_cfg.trace =
                    Some(crate::trace_adapter::FabricTraceAdapter::hook(sink.clone()));
            }
        }
        let world = World::new(self.n, world_cfg);
        let commit_check: CommitCheck = {
            let intro = world.introspect();
            Box::new(move |round| {
                let (msgs, bytes) = intro.user_in_flight();
                if msgs != 0 || bytes != 0 {
                    return Err(format!(
                        "round {round} committed with user traffic in flight: \
                         {msgs} message(s) / {bytes} byte(s)"
                    ));
                }
                Ok(())
            })
        };
        let (handles, trigger, coord_join) = spawn_coordinator_ext(
            self.n,
            self.cfg.exit_after_ckpt,
            self.cfg.fault.clone(),
            Some(commit_check),
            Some(CoordStore {
                root: self.cfg.ckpt_dir.clone(),
                retain: self.cfg.retain_generations,
            }),
            // Round numbers keep advancing across restarts so a new round
            // never reuses (and on abort, never deletes) the generation
            // directory of a previously committed round.
            restored_round.map(|r| r + 1).unwrap_or(0),
            self.cfg.trace.clone(),
            // Engine unparkers: the coordinator wakes ranks out of engine
            // parks on every control message and on intent raise.
            Some(world.unparkers()),
        );
        let driver_join = driver.map(|d| {
            let t = trigger.clone();
            std::thread::spawn(move || d(t))
        });
        // Optional tools-interface deadlock detector (paper conclusion).
        let detector = self.cfg.deadlock_timeout.map(|window| {
            let intro = world.introspect();
            let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let stop2 = stop.clone();
            let handle = std::thread::spawn(move || -> Option<String> {
                use std::sync::atomic::Ordering;
                let slice = (window / 4).max(std::time::Duration::from_millis(10));
                let mut stuck_since: Option<std::time::Instant> = None;
                let mut last: Option<Vec<mpisim::RankActivity>> = None;
                loop {
                    // Sleep one sampling slice, but in small chunks: the
                    // teardown path joins this thread, so a coarse sleep
                    // would stall every run's shutdown by up to a slice.
                    let mut slept = std::time::Duration::ZERO;
                    while slept < slice {
                        if stop2.load(Ordering::Relaxed) {
                            return None;
                        }
                        let step = std::time::Duration::from_millis(20).min(slice - slept);
                        std::thread::sleep(step);
                        slept += step;
                    }
                    let snap = intro.activity();
                    let all_blocked = snap.iter().all(|a| a.blocked.is_some());
                    let unchanged = last.as_ref() == Some(&snap);
                    last = Some(snap.clone());
                    if all_blocked && unchanged {
                        let since = *stuck_since.get_or_insert_with(std::time::Instant::now);
                        if since.elapsed() >= window {
                            let report = snap
                                .iter()
                                .enumerate()
                                .map(|(r, a)| mpisim::describe(r, a))
                                .collect::<Vec<_>>()
                                .join("\n");
                            intro.poison();
                            return Some(report);
                        }
                    } else {
                        stuck_since = None;
                    }
                }
            });
            (stop, handle)
        });
        let cfg = &self.cfg;
        let f = &f;
        let handles_ref = &handles;
        let selected_ref = &selected;
        let launched = world.launch(move |proc| -> Result<(AppOutcome<T>, ManaStats)> {
            let mut coord = handles_ref[proc.rank()].clone();
            // Route the control channel's blocking points through the
            // rank's engine parker: under the coop engine a rank waiting
            // on the coordinator must release its run token.
            coord.attach_parker(proc.parker());
            let mut mana = if let Some(sel) = selected_ref {
                let image = CkptImage::read_from_dir(&sel.dir, proc.rank())?;
                Mana::restore(proc, cfg.clone(), coord, &image)?
            } else {
                Mana::fresh(proc, cfg.clone(), coord)
            };
            let res = f(&mut mana);
            let outcome = match res {
                Ok(v) => match mana.finalize() {
                    Ok(()) => AppOutcome::Finished(v),
                    Err(ManaError::CkptExit) => AppOutcome::Checkpointed,
                    Err(e) => {
                        mana.abort_world();
                        return Err(e);
                    }
                },
                Err(ManaError::CkptExit) => {
                    match mana.finalize() {
                        Ok(()) | Err(ManaError::CkptExit) => {}
                        Err(e) => {
                            mana.abort_world();
                            return Err(e);
                        }
                    }
                    AppOutcome::Checkpointed
                }
                // A fatal application/MPI error: abort the world so peers
                // blocked on this rank fail fast instead of hanging
                // (MPI_ERRORS_ARE_FATAL behaviour).
                Err(e) => {
                    mana.abort_world();
                    return Err(e);
                }
            };
            Ok((outcome, mana.stats()))
        });
        let world_stats = world.stats();
        // Drop our coordinator senders so the coordinator unblocks even if
        // ranks errored before saying goodbye.
        drop(handles);
        drop(trigger);
        if let Some(j) = driver_join {
            let _ = j.join();
        }
        let deadlock_report = detector.and_then(|(stop, handle)| {
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            handle.join().ok().flatten()
        });
        if let Some(report) = deadlock_report {
            let _ = coord_join.join();
            self.dump_trace("deadlock");
            return Err(RuntimeError::Deadlock(report));
        }
        let results = match launched {
            Ok(r) => r,
            Err(e) => {
                let _ = coord_join.join();
                self.dump_trace("world_fail");
                return Err(RuntimeError::World(e.to_string()));
            }
        };
        let coord = match coord_join.join() {
            Ok(c) => c,
            Err(e) => {
                eprintln!("mana coordinator thread panicked: {e:?}");
                CoordReport::default()
            }
        };
        let mut outcomes = Vec::with_capacity(self.n);
        let mut rank_stats = Vec::with_capacity(self.n);
        for (rank, r) in results.into_iter().enumerate() {
            match r {
                Ok((o, s)) => {
                    outcomes.push(o);
                    rank_stats.push(s);
                }
                Err(e) => {
                    self.dump_trace("rank_fail");
                    return Err(RuntimeError::Rank(rank, e));
                }
            }
        }
        if !coord.invariant_violations.is_empty() {
            self.dump_trace("invariant");
            return Err(RuntimeError::Invariant(
                coord.invariant_violations.join("; "),
            ));
        }
        Ok(RunReport {
            outcomes,
            world_stats,
            rank_stats,
            coord,
            restored_round,
        })
    }

    /// Dump the flight recorder (JSONL + Chrome trace) on a runtime
    /// failure. Best-effort: the dump is diagnostic material, never a
    /// reason to mask the original error. The paths — and the fault-plan
    /// seed, recorded in the dump header — are printed to stderr so a
    /// failure report always says where its trace went.
    fn dump_trace(&self, what: &str) {
        let Some(sink) = &self.cfg.trace else {
            return;
        };
        let dir = obs::default_trace_dir();
        let label = obs::unique_label(&format!("mana2_{what}"));
        let seed = self.cfg.fault.as_ref().map(|f| f.seed());
        match obs::flight_record(sink, &dir, &label, seed) {
            Ok(d) => eprintln!(
                "mana2: flight recorder dumped {} events (seed {:?}): {} / {}",
                d.events,
                seed,
                d.jsonl.display(),
                d.chrome.display()
            ),
            Err(e) => eprintln!("mana2: flight recorder dump failed: {e}"),
        }
    }
}
