//! Fortran-binding entry points on `Mana` (paper §III-F).
//!
//! A Fortran MPI call reaches MANA with *addresses* where C passes values:
//! named constants like `MPI_IN_PLACE` are link-time storage locations in
//! the MPI library. These entry points take the raw address argument,
//! classify it against the discovered constant table, and substitute the
//! C-side meaning before calling the ordinary wrapper — exactly the
//! MANA-2.0 shim.

use crate::error::Result;
use crate::fortran::{FortranConstants, NamedConstant};
use crate::ids::VComm;
use crate::mana::Mana;
use mpisim::ReduceOp;

impl Mana<'_> {
    /// Fortran `MPI_ALLREDUCE(sendbuf, recvbuf, …)`: `sendbuf_addr` may be
    /// the address of the `MPI_IN_PLACE` common-block constant, in which
    /// case `recvbuf` doubles as the contribution (the in-place form).
    /// Returns the reduced vector.
    pub fn f_allreduce(
        &mut self,
        fc: &FortranConstants,
        sendbuf_addr: usize,
        sendbuf: Option<&[f64]>,
        recvbuf: &[f64],
        vc: VComm,
        op: ReduceOp,
    ) -> Result<Vec<f64>> {
        let contrib: &[f64] = match fc.classify(sendbuf_addr) {
            Some(NamedConstant::InPlace) => recvbuf,
            _ => sendbuf.unwrap_or(&[]),
        };
        self.allreduce_t(vc, op, contrib)
    }

    /// Fortran `MPI_RECV(..., status)`: `status_addr` may be
    /// `MPI_STATUS_IGNORE`'s address; the shim then discards the status
    /// like the C sentinel does. Returns `(Some(status) unless ignored,
    /// payload)`.
    pub fn f_recv(
        &mut self,
        fc: &FortranConstants,
        vc: VComm,
        src: mpisim::SrcSel,
        tag: mpisim::TagSel,
        status_addr: usize,
    ) -> Result<(Option<mpisim::Status>, Vec<u8>)> {
        let (st, data) = self.recv(vc, src, tag)?;
        let ignored = matches!(
            fc.classify(status_addr),
            Some(NamedConstant::StatusIgnore) | Some(NamedConstant::StatusesIgnore)
        );
        Ok(((!ignored).then_some(st), data))
    }
}

#[cfg(test)]
mod tests {
    use crate::fortran::{FortranConstants, NamedConstant};

    #[test]
    fn constants_available_for_shim() {
        let fc = FortranConstants::discover();
        assert!(fc.classify(fc.address_of(NamedConstant::InPlace)).is_some());
    }
}
