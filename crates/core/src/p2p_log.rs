//! Per-pair point-to-point byte accounting and the drain buffer
//! (paper §III-B).
//!
//! MANA-2.0 keeps a *small-grain* counter per (sender, receiver) pair —
//! the improvement over the original MANA's global totals — so that after
//! one `MPI_Alltoall` of the `sent` rows at checkpoint time, every rank
//! knows locally how many bytes it is still owed from each peer and can
//! drain them without further coordination.

use crate::ids::VComm;
use mpisim::{SrcSel, TagSel};
use splitproc::{CodecError, Decode, Encode, Reader};
use std::collections::VecDeque;

/// Per-rank send/receive byte counters, indexed by *world* rank (the
/// unambiguous global identity §III challenge 5 calls for — communicator-
/// local ranks are translated before counting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct P2pLog {
    sent: Vec<u64>,
    recvd: Vec<u64>,
    msgs_sent: u64,
    msgs_recvd: u64,
}

impl P2pLog {
    /// Zeroed counters for a world of `n`.
    pub fn new(n: usize) -> Self {
        P2pLog {
            sent: vec![0; n],
            recvd: vec![0; n],
            msgs_sent: 0,
            msgs_recvd: 0,
        }
    }

    /// Count an outgoing user message.
    ///
    /// Each message is charged `bytes + 1`: one virtual header byte on top
    /// of the payload. Zero-byte messages (an emulated barrier's chunks,
    /// an empty user send) would otherwise be invisible to the deficit
    /// computation and could survive a "complete" drain inside the
    /// network. Both sides of every pair charge the same way, so deficits
    /// reach zero exactly when byte counts *and* message counts agree.
    pub fn count_send(&mut self, dst_world: usize, bytes: usize) {
        self.sent[dst_world] += bytes as u64 + 1;
        self.msgs_sent += 1;
    }

    /// Count a completed incoming user message (same `bytes + 1` charge
    /// as [`P2pLog::count_send`]).
    pub fn count_recv(&mut self, src_world: usize, bytes: usize) {
        self.recvd[src_world] += bytes as u64 + 1;
        self.msgs_recvd += 1;
    }

    /// [`P2pLog::count_recv`] for a message pulled out of the network by a
    /// drain sweep, with a flight-recorder capture event when tracing is
    /// armed (`round` is the checkpoint round doing the draining).
    pub fn count_drained(
        &mut self,
        src_world: usize,
        bytes: usize,
        rec: Option<&obs::Recorder>,
        round: i64,
    ) {
        self.count_recv(src_world, bytes);
        if let Some(r) = rec {
            r.event(
                round,
                obs::EventKind::DrainCapture {
                    src: src_world as u32,
                    bytes: bytes as u64,
                },
            );
        }
    }

    /// The row exchanged by the drain's alltoall: bytes sent to each peer.
    pub fn sent_row(&self) -> &[u64] {
        &self.sent
    }

    /// Bytes received from each peer.
    pub fn recvd_row(&self) -> &[u64] {
        &self.recvd
    }

    /// Totals (the legacy coordinator drain works on these).
    pub fn totals(&self) -> (u64, u64) {
        (self.sent.iter().sum(), self.recvd.iter().sum())
    }

    /// (messages sent, messages received).
    pub fn msg_counts(&self) -> (u64, u64) {
        (self.msgs_sent, self.msgs_recvd)
    }

    /// Given `expected[j]` = bytes peer `j` reports having sent to me,
    /// return the per-peer deficit still in the network (or claimed by a
    /// posted receive).
    pub fn deficits(&self, expected: &[u64]) -> Vec<u64> {
        expected
            .iter()
            .zip(&self.recvd)
            .map(|(e, r)| e.saturating_sub(*r))
            .collect()
    }

    /// Live per-peer deficit: bytes peer `peer` claims to have sent me
    /// that I have not yet counted as received. Unlike a
    /// [`P2pLog::deficits`] snapshot taken before a sweep, this reads the
    /// *current* `recvd` counter — so a message matched mid-sweep (by a
    /// posted receive, or an earlier probe in the same sweep) immediately
    /// drops the peer's remaining claim and cannot be drained twice.
    pub fn deficit_from(&self, expected: &[u64], peer: usize) -> u64 {
        expected
            .get(peer)
            .copied()
            .unwrap_or(0)
            .saturating_sub(self.recvd[peer])
    }

    /// Reset after a successful drain: the network is empty and both sides
    /// of every pair agree, so counters restart from zero (consistently on
    /// all ranks).
    pub fn reset(&mut self) {
        self.sent.iter_mut().for_each(|v| *v = 0);
        self.recvd.iter_mut().for_each(|v| *v = 0);
    }
}

/// One message captured by the drain: it was in the network (or claimed by
/// a pending receive) at checkpoint time and now lives in MANA's memory,
/// to be handed to the application receive that eventually asks for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainedMsg {
    /// Virtual communicator it was sent on (virtual IDs are restart-stable,
    /// unlike real contexts).
    pub vcomm: VComm,
    /// Sender's world rank.
    pub src_world: usize,
    /// Message tag.
    pub tag: i32,
    /// Payload.
    pub payload: Vec<u8>,
}

impl Encode for DrainedMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.vcomm.encode(out);
        self.src_world.encode(out);
        self.tag.encode(out);
        self.payload.encode(out);
    }
}

impl Decode for DrainedMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(DrainedMsg {
            vcomm: VComm::decode(r)?,
            src_world: usize::decode(r)?,
            tag: i32::decode(r)?,
            payload: Vec::decode(r)?,
        })
    }
}

/// FIFO buffer of drained messages. Receive wrappers consult it *before*
/// touching the lower half; after a restart it is the only place a
/// pre-checkpoint message can be.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DrainBuffer {
    msgs: VecDeque<DrainedMsg>,
}

impl DrainBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a drained message (drain order approximates arrival order, so
    /// FIFO matching preserves the non-overtaking guarantee per source).
    pub fn push(&mut self, msg: DrainedMsg) {
        self.msgs.push_back(msg);
    }

    /// Number of buffered messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Total buffered payload bytes.
    pub fn bytes(&self) -> usize {
        self.msgs.iter().map(|m| m.payload.len()).sum()
    }

    /// Take the first message matching (vcomm, src, tag). `src` is a world
    /// rank (`None` = `ANY_SOURCE` already translated); `tag` follows
    /// [`TagSel`] semantics.
    pub fn take_match(
        &mut self,
        vcomm: VComm,
        src_world: Option<usize>,
        tag: TagSel,
    ) -> Option<DrainedMsg> {
        let pos = self.msgs.iter().position(|m| {
            m.vcomm == vcomm
                && src_world.is_none_or(|s| m.src_world == s)
                && match tag {
                    TagSel::Tag(t) => m.tag == t,
                    TagSel::Any => true,
                    TagSel::Below(b) => m.tag < b,
                }
        })?;
        self.msgs.remove(pos)
    }

    /// Peek (iprobe against the buffer).
    pub fn peek_match(
        &self,
        vcomm: VComm,
        src_world: Option<usize>,
        tag: TagSel,
    ) -> Option<&DrainedMsg> {
        self.msgs.iter().find(|m| {
            m.vcomm == vcomm
                && src_world.is_none_or(|s| m.src_world == s)
                && match tag {
                    TagSel::Tag(t) => m.tag == t,
                    TagSel::Any => true,
                    TagSel::Below(b) => m.tag < b,
                }
        })
    }
}

impl Encode for DrainBuffer {
    fn encode(&self, out: &mut Vec<u8>) {
        self.msgs.iter().cloned().collect::<Vec<_>>().encode(out);
    }
}

impl Decode for DrainBuffer {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(DrainBuffer {
            msgs: Vec::<DrainedMsg>::decode(r)?.into(),
        })
    }
}

/// Helper shared by receive paths: translate a communicator-local
/// [`SrcSel`] to a world-rank selector using the record's membership.
pub fn src_to_world(world_ranks: &[usize], src: SrcSel) -> Option<Option<usize>> {
    match src {
        SrcSel::Any => Some(None),
        SrcSel::Rank(local) => world_ranks.get(local).map(|&w| Some(w)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_deficits() {
        let mut log = P2pLog::new(3);
        log.count_send(1, 100);
        log.count_send(1, 50);
        log.count_recv(2, 30);
        // Each message is charged payload + 1 virtual header byte.
        assert_eq!(log.sent_row(), &[0, 152, 0]);
        assert_eq!(log.recvd_row(), &[0, 0, 31]);
        assert_eq!(log.totals(), (152, 31));
        assert_eq!(log.msg_counts(), (2, 1));
        // Peers claim: rank0 sent me 0, rank1 sent me 20, rank2 sent me 80.
        assert_eq!(log.deficits(&[0, 20, 80]), vec![0, 20, 49]);
        log.reset();
        assert_eq!(log.totals(), (0, 0));
    }

    #[test]
    fn live_deficits_reflect_mid_sweep_matches() {
        // Regression: drain_sweep used to trust the deficit snapshot taken
        // at sweep entry. A message matched *during* the sweep (stage (b)
        // testing a posted receive, or a prior probe iteration) left the
        // stale snapshot claiming bytes were still owed, so the sweep kept
        // pulling — double-counting the peer's traffic. The live query
        // must reflect every count_drained immediately.
        let mut log = P2pLog::new(2);
        let expected = vec![0, 31];
        assert_eq!(log.deficit_from(&expected, 1), 31);
        let stale = log.deficits(&expected);
        // One 30-byte message (charged 31) is matched mid-sweep.
        log.count_drained(1, 30, None, 0);
        // The snapshot still claims 31 bytes owed…
        assert_eq!(stale[1], 31);
        // …but the live view knows the peer is settled.
        assert_eq!(log.deficit_from(&expected, 1), 0);
        // Out-of-range peers (sub-communicator padding) owe nothing.
        assert_eq!(log.deficit_from(&expected[..1], 1), 0);
    }

    #[test]
    fn zero_byte_messages_create_deficits() {
        // An empty payload (emulated-barrier chunk, zero-length user send)
        // must still show up in the row exchange, or the drain would leave
        // it in the network and it would be lost across an exit-restart.
        let mut sender = P2pLog::new(2);
        sender.count_send(1, 0);
        assert_eq!(sender.sent_row(), &[0, 1]);
        let receiver = P2pLog::new(2);
        assert_eq!(receiver.deficits(&[1, 0]), vec![1, 0]);
        let mut receiver = receiver;
        receiver.count_recv(0, 0);
        assert_eq!(receiver.deficits(&[1, 0]), vec![0, 0]);
    }

    #[test]
    fn drain_buffer_fifo_per_match() {
        let mut buf = DrainBuffer::new();
        let m = |src, tag, p: &[u8]| DrainedMsg {
            vcomm: VComm(1),
            src_world: src,
            tag,
            payload: p.to_vec(),
        };
        buf.push(m(0, 5, &[1]));
        buf.push(m(0, 5, &[2]));
        buf.push(m(2, 6, &[3]));
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.bytes(), 3);

        // FIFO within the same (src,tag).
        let got = buf.take_match(VComm(1), Some(0), TagSel::Tag(5)).unwrap();
        assert_eq!(got.payload, vec![1]);
        // ANY_SOURCE/ANY_TAG takes earliest remaining.
        let got = buf.take_match(VComm(1), None, TagSel::Any).unwrap();
        assert_eq!(got.payload, vec![2]);
        // Below-band filter.
        assert!(buf.take_match(VComm(1), None, TagSel::Below(6)).is_none());
        assert!(buf.peek_match(VComm(1), Some(2), TagSel::Tag(6)).is_some());
        let got = buf.take_match(VComm(1), Some(2), TagSel::Below(7)).unwrap();
        assert_eq!(got.payload, vec![3]);
        assert!(buf.is_empty());
    }

    #[test]
    fn wrong_vcomm_never_matches() {
        let mut buf = DrainBuffer::new();
        buf.push(DrainedMsg {
            vcomm: VComm(1),
            src_world: 0,
            tag: 0,
            payload: vec![],
        });
        assert!(buf.take_match(VComm(2), None, TagSel::Any).is_none());
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn buffer_roundtrips_codec() {
        let mut buf = DrainBuffer::new();
        buf.push(DrainedMsg {
            vcomm: VComm(3),
            src_world: 7,
            tag: 9,
            payload: vec![1, 2, 3],
        });
        let bytes = buf.to_bytes();
        assert_eq!(DrainBuffer::from_bytes(&bytes).unwrap(), buf);
    }

    #[test]
    fn src_translation() {
        let ranks = vec![4, 7, 9];
        assert_eq!(src_to_world(&ranks, SrcSel::Any), Some(None));
        assert_eq!(src_to_world(&ranks, SrcSel::Rank(1)), Some(Some(7)));
        assert_eq!(src_to_world(&ranks, SrcSel::Rank(5)), None);
    }
}
