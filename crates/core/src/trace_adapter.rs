//! Adapter from `mpisim`'s dependency-free [`mpisim::TraceHook`] onto the
//! `obs` flight recorder.
//!
//! The simulator cannot depend on `obs` (it depends on nothing), so it
//! exposes a narrow hook trait instead; this adapter routes fabric
//! events into per-rank rings. Send events are attributed to the sending
//! rank's ring, match and hold events to the receiving rank's — the
//! actor whose timeline they explain. Fabric events carry no checkpoint
//! round (the fabric does not know it), so they record [`obs::NO_ROUND`].

use obs::{EventKind, TraceSink};
use std::sync::Arc;

/// Routes fabric send/match/hold events into an [`obs::TraceSink`].
pub struct FabricTraceAdapter {
    sink: Arc<TraceSink>,
}

impl FabricTraceAdapter {
    /// Adapter recording into `sink`.
    pub fn new(sink: Arc<TraceSink>) -> Self {
        FabricTraceAdapter { sink }
    }

    /// Wrap into the handle form [`mpisim::WorldCfg`] accepts.
    pub fn hook(sink: Arc<TraceSink>) -> mpisim::TraceHookRef {
        mpisim::TraceHookRef::new(Arc::new(FabricTraceAdapter::new(sink)))
    }
}

impl mpisim::TraceHook for FabricTraceAdapter {
    fn on_send(&self, src: usize, dst: usize, bytes: usize, user: bool) {
        self.sink.record(
            src as i32,
            obs::NO_ROUND,
            EventKind::NetSend {
                dst: dst as u32,
                bytes: bytes as u64,
                user,
            },
        );
    }

    fn on_match(&self, src: usize, dst: usize, bytes: usize) {
        self.sink.record(
            dst as i32,
            obs::NO_ROUND,
            EventKind::NetMatch {
                src: src as u32,
                bytes: bytes as u64,
            },
        );
    }

    fn on_hold(&self, src: usize, dst: usize, reorder: bool) {
        self.sink.record(
            dst as i32,
            obs::NO_ROUND,
            EventKind::NetHold {
                src: src as u32,
                reorder,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::TraceHook as _;

    #[test]
    fn events_route_to_the_right_rings() {
        let sink = TraceSink::deterministic(3, 16);
        let a = FabricTraceAdapter::new(Arc::clone(&sink));
        a.on_send(0, 2, 64, true);
        a.on_match(0, 2, 64);
        a.on_hold(1, 2, false);
        assert_eq!(sink.ring_events(0).len(), 1, "send goes to the sender");
        assert_eq!(
            sink.ring_events(2).len(),
            2,
            "match+hold go to the receiver"
        );
        assert_eq!(sink.ring_events(1).len(), 0);
    }

    #[test]
    fn fabric_emits_through_the_hook() {
        let sink = TraceSink::deterministic(2, 64);
        let cfg = mpisim::WorldCfg {
            trace: Some(FabricTraceAdapter::hook(Arc::clone(&sink))),
            ..mpisim::WorldCfg::default()
        };
        let (_, _) = mpisim::run(2, cfg, |p| {
            let world = p.comm_world();
            if p.rank() == 0 {
                p.send_t(world, 1, 7, &[1u64, 2, 3]).unwrap();
            } else {
                let _ = p
                    .recv_t::<u64>(world, mpisim::SrcSel::Rank(0), mpisim::TagSel::Tag(7))
                    .unwrap();
            }
        })
        .unwrap();
        let sends = sink
            .ring_events(0)
            .iter()
            .filter(|e| matches!(e.kind, EventKind::NetSend { .. }))
            .count();
        let matches = sink
            .ring_events(1)
            .iter()
            .filter(|e| matches!(e.kind, EventKind::NetMatch { .. }))
            .count();
        assert!(sends >= 1, "no send events recorded");
        assert!(matches >= 1, "no match events recorded");
    }
}
