//! A minimal Fx-style hasher for the virtual-ID fast path.
//!
//! Paper §III-I(1): the original MANA's `std::map` (a red-black tree,
//! O(log n) with poor locality) slowed virtual→real translation; the fix
//! is "a C++ map based on hash arrays". The offline crate set has no
//! `rustc-hash`, so this is a from-scratch implementation of the same
//! multiply-rotate scheme rustc uses — quality is low but speed on small
//! integer keys (virtual IDs) is exactly what the table needs. HashDoS is
//! not a concern: keys are MANA-allocated sequential IDs, not attacker
//! input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx-style streaming hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the length-prefixed remainder.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.remove(&2), Some("b"));
        assert_eq!(m.get(&2), None);
    }

    #[test]
    fn hash_distributes_sequential_keys() {
        // Sequential IDs (the actual workload) should not collide in the
        // low bits catastrophically.
        let mut buckets = [0u32; 16];
        for i in 0..1024u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            buckets[(h.finish() & 0xF) as usize] += 1;
        }
        // Perfectly uniform would be 64 per bucket; allow wide slack.
        assert!(buckets.iter().all(|&b| b > 16 && b < 256), "{buckets:?}");
    }

    #[test]
    fn byte_stream_and_word_agree_on_structure() {
        let mut a = FxHasher::default();
        a.write(b"abcdefgh");
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes(*b"abcdefgh"));
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn tail_bytes_hash_differently() {
        let mut a = FxHasher::default();
        a.write(b"abc");
        let mut b = FxHasher::default();
        b.write(b"abd");
        assert_ne!(a.finish(), b.finish());
    }
}
