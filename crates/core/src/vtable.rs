//! Virtual-to-real ID tables with pluggable backends.
//!
//! The table is the heart of process virtualization (paper §II-C, ref
//! [16]): the application holds virtual IDs, MANA holds the mapping, and a
//! restart rebinds virtual IDs to fresh real objects without touching
//! application memory. Paper §III-I(1) observes that the *backend* of this
//! table matters — the original MANA used `std::map` (ordered tree) plus
//! occasional linear searches, and the fix is a hash table. All three
//! backends are implemented here so the `ablation_vtable` bench can
//! measure the claim.

use crate::fxhash::FxHashMap;
use std::cell::Cell;
use std::collections::BTreeMap;

/// Lookup-structure choice for virtual-ID tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VtBackend {
    /// Linear scan of a vector — the "in some cases, a linear search"
    /// behaviour called out in §III-I(1).
    Linear,
    /// Ordered tree (`std::map` in the original MANA; `BTreeMap` here).
    BTree,
    /// Hash array (the MANA-2.0 recommendation).
    FxHash,
}

enum Store<R> {
    Linear(Vec<(u64, R)>),
    BTree(BTreeMap<u64, R>),
    Fx(FxHashMap<u64, R>),
}

/// A virtual→real mapping with ID allocation and operation counters.
pub struct VirtualTable<R> {
    store: Store<R>,
    next_id: u64,
    lookups: Cell<u64>,
    inserts: u64,
    removes: u64,
}

impl<R> VirtualTable<R> {
    /// Empty table. `first_id` is the first virtual ID to allocate (virtual
    /// IDs 0 and 1 are reserved for NULL and WORLD in the comm table).
    pub fn new(backend: VtBackend, first_id: u64) -> Self {
        VirtualTable {
            store: match backend {
                VtBackend::Linear => Store::Linear(Vec::new()),
                VtBackend::BTree => Store::BTree(BTreeMap::new()),
                VtBackend::FxHash => Store::Fx(FxHashMap::default()),
            },
            next_id: first_id,
            lookups: Cell::new(0),
            inserts: 0,
            removes: 0,
        }
    }

    /// The backend in use.
    pub fn backend(&self) -> VtBackend {
        match self.store {
            Store::Linear(_) => VtBackend::Linear,
            Store::BTree(_) => VtBackend::BTree,
            Store::Fx(_) => VtBackend::FxHash,
        }
    }

    /// Allocate a fresh virtual ID bound to `real`.
    pub fn insert(&mut self, real: R) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.bind(id, real);
        id
    }

    /// Bind (or rebind) an explicit virtual ID. Used at restart, where the
    /// virtual IDs from the image must be preserved while the real side is
    /// fresh.
    pub fn bind(&mut self, vid: u64, real: R) {
        self.inserts += 1;
        if vid >= self.next_id {
            self.next_id = vid + 1;
        }
        match &mut self.store {
            Store::Linear(v) => match v.iter_mut().find(|(k, _)| *k == vid) {
                Some(slot) => slot.1 = real,
                None => v.push((vid, real)),
            },
            Store::BTree(m) => {
                m.insert(vid, real);
            }
            Store::Fx(m) => {
                m.insert(vid, real);
            }
        }
    }

    /// Translate a virtual ID to its real object.
    pub fn lookup(&self, vid: u64) -> Option<&R> {
        self.lookups.set(self.lookups.get() + 1);
        match &self.store {
            Store::Linear(v) => v.iter().find(|(k, _)| *k == vid).map(|(_, r)| r),
            Store::BTree(m) => m.get(&vid),
            Store::Fx(m) => m.get(&vid),
        }
    }

    /// Mutable translation.
    pub fn lookup_mut(&mut self, vid: u64) -> Option<&mut R> {
        self.lookups.set(self.lookups.get() + 1);
        match &mut self.store {
            Store::Linear(v) => v.iter_mut().find(|(k, _)| *k == vid).map(|(_, r)| r),
            Store::BTree(m) => m.get_mut(&vid),
            Store::Fx(m) => m.get_mut(&vid),
        }
    }

    /// Remove a binding (garbage collection / retirement).
    pub fn remove(&mut self, vid: u64) -> Option<R> {
        self.removes += 1;
        match &mut self.store {
            Store::Linear(v) => v
                .iter()
                .position(|(k, _)| *k == vid)
                .map(|i| v.swap_remove(i).1),
            Store::BTree(m) => m.remove(&vid),
            Store::Fx(m) => m.remove(&vid),
        }
    }

    /// Number of live bindings. Paper §III-A: unbounded growth here is the
    /// symptom the two-step retirement algorithm exists to prevent.
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Linear(v) => v.len(),
            Store::BTree(m) => m.len(),
            Store::Fx(m) => m.len(),
        }
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate bindings in unspecified order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = (u64, &R)> + '_> {
        match &self.store {
            Store::Linear(v) => Box::new(v.iter().map(|(k, r)| (*k, r))),
            Store::BTree(m) => Box::new(m.iter().map(|(k, r)| (*k, r))),
            Store::Fx(m) => Box::new(m.iter().map(|(k, r)| (*k, r))),
        }
    }

    /// Virtual IDs in ascending order (deterministic serialization).
    pub fn sorted_vids(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.iter().map(|(k, _)| k).collect();
        v.sort_unstable();
        v
    }

    /// (lookups, inserts, removes) performed so far.
    pub fn op_counts(&self) -> (u64, u64, u64) {
        (self.lookups.get(), self.inserts, self.removes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backends() -> [VtBackend; 3] {
        [VtBackend::Linear, VtBackend::BTree, VtBackend::FxHash]
    }

    #[test]
    fn insert_lookup_remove_all_backends() {
        for b in backends() {
            let mut t: VirtualTable<String> = VirtualTable::new(b, 2);
            let a = t.insert("alpha".into());
            let c = t.insert("beta".into());
            assert_eq!(a, 2);
            assert_eq!(c, 3);
            assert_eq!(t.lookup(a).unwrap(), "alpha");
            assert_eq!(t.lookup(c).unwrap(), "beta");
            assert!(t.lookup(99).is_none());
            assert_eq!(t.remove(a).unwrap(), "alpha");
            assert!(t.lookup(a).is_none());
            assert_eq!(t.len(), 1);
            assert_eq!(t.backend(), b);
        }
    }

    #[test]
    fn bind_rebinds_and_bumps_allocator() {
        for b in backends() {
            let mut t: VirtualTable<u64> = VirtualTable::new(b, 2);
            t.bind(10, 100);
            assert_eq!(*t.lookup(10).unwrap(), 100);
            t.bind(10, 200); // rebind (restart path)
            assert_eq!(*t.lookup(10).unwrap(), 200);
            assert_eq!(t.len(), 1);
            // Allocator must not re-issue 10.
            let fresh = t.insert(300);
            assert_eq!(fresh, 11);
        }
    }

    #[test]
    fn lookup_mut_updates_in_place() {
        for b in backends() {
            let mut t: VirtualTable<u64> = VirtualTable::new(b, 0);
            let id = t.insert(5);
            *t.lookup_mut(id).unwrap() = 6;
            assert_eq!(*t.lookup(id).unwrap(), 6);
        }
    }

    #[test]
    fn sorted_vids_deterministic() {
        for b in backends() {
            let mut t: VirtualTable<u8> = VirtualTable::new(b, 0);
            for i in 0..10 {
                t.insert(i);
            }
            t.remove(3);
            assert_eq!(t.sorted_vids(), vec![0, 1, 2, 4, 5, 6, 7, 8, 9]);
        }
    }

    #[test]
    fn op_counters() {
        let mut t: VirtualTable<u8> = VirtualTable::new(VtBackend::FxHash, 0);
        let id = t.insert(1);
        t.lookup(id);
        t.lookup(id);
        t.remove(id);
        assert_eq!(t.op_counts(), (2, 1, 1));
    }

    #[test]
    fn backends_agree_under_mixed_ops() {
        // Differential test: all three backends must behave identically.
        let mut tables: Vec<VirtualTable<u64>> = backends()
            .into_iter()
            .map(|b| VirtualTable::new(b, 2))
            .collect();
        let mut ids = Vec::new();
        for i in 0..200u64 {
            let new_ids: Vec<u64> = tables.iter_mut().map(|t| t.insert(i * 7)).collect();
            assert!(new_ids.windows(2).all(|w| w[0] == w[1]));
            ids.push(new_ids[0]);
            if i % 3 == 0 {
                let victim = ids[(i as usize * 5) % ids.len()];
                let removed: Vec<Option<u64>> =
                    tables.iter_mut().map(|t| t.remove(victim)).collect();
                assert!(removed.windows(2).all(|w| w[0] == w[1]));
            }
        }
        let lens: Vec<usize> = tables.iter().map(|t| t.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]));
        let vids: Vec<Vec<u64>> = tables.iter().map(|t| t.sorted_vids()).collect();
        assert_eq!(vids[0], vids[1]);
        assert_eq!(vids[1], vids[2]);
    }
}
