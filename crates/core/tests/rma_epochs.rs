//! Regression: accumulate epochs across checkpoint-kill-restart (mirrors
//! the onesided_rma example).

use mana_core::{ManaConfig, ManaRuntime, VWin};
use mpisim::{Datatype, ReduceOp, WorldCfg};
use std::time::Duration;

#[test]
fn accumulate_epochs_across_restart() {
    let n = 4;
    let dir = std::env::temp_dir().join(format!("mana2_rma_epochs_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ManaConfig {
        ckpt_dir: dir.clone(),
        exit_after_ckpt: true,
        ..ManaConfig::default()
    };
    let wcfg = WorldCfg {
        watchdog: Some(Duration::from_secs(10)),
        ..WorldCfg::default()
    };
    let app = |m: &mut mana_core::Mana<'_>| -> mana_core::Result<u64> {
        let w = m.comm_world();
        let phase = m
            .upper()
            .read_value::<u64>("phase")
            .transpose()?
            .unwrap_or(0);
        if phase == 0 {
            let win = m.win_create(w, 8)?;
            m.win_fence(win)?;
            for t in 0..m.world_size() {
                m.win_accumulate(
                    win,
                    t,
                    0,
                    Datatype::U64,
                    ReduceOp::Sum,
                    &mpisim::encode_slice(&[(m.rank() + 1) as u64]),
                )?;
            }
            m.win_fence(win)?;
            m.upper_mut().write_value("win", &win.0);
            m.upper_mut().write_value("phase", &1u64);
            if m.rank() == 0 {
                m.request_checkpoint()?;
            }
            m.step_commit()?;
        }
        let win = VWin(m.upper().read_value::<u64>("win").transpose()?.unwrap());
        // Open the next access epoch (also the synchronization point that
        // guarantees every restarted rank has its window rebuilt).
        m.win_fence(win)?;
        for t in 0..m.world_size() {
            m.win_accumulate(
                win,
                t,
                0,
                Datatype::U64,
                ReduceOp::Sum,
                &mpisim::encode_slice(&[(m.rank() + 1) as u64]),
            )?;
        }
        m.win_fence(win)?;
        let bytes = m.win_get(win, m.rank(), 0, 8)?;
        m.win_fence(win)?;
        m.win_free(win)?;
        Ok(u64::from_le_bytes(bytes[..8].try_into().unwrap()))
    };
    let pass1 = ManaRuntime::new(n, cfg.clone())
        .with_world_cfg(wcfg.clone())
        .run_fresh(app)
        .unwrap();
    assert!(pass1.all_checkpointed());
    let pass2 = ManaRuntime::new(n, cfg)
        .with_world_cfg(wcfg)
        .run_restart(app)
        .unwrap();
    assert_eq!(pass2.values(), vec![20, 20, 20, 20]);
    let _ = std::fs::remove_dir_all(&dir);
}
