//! Property test: a checkpoint landing in the middle of an emulated
//! `MPI_Alltoall` must not change the buffers any rank receives.
//!
//! The interrupted run checkpoints while ranks are parked inside the
//! alltoall state machine (resume mode — in `exit_after_ckpt` mode the
//! checkpoint waits for a step boundary by design, so mid-collective
//! windows only exist when resuming). The drain captures whatever chunks
//! were in flight — including zero-length ones, which exercises the
//! per-message accounting in the §III-B row exchange — and the state
//! machines finish from their serialized position after the resume.

use mana_core::{ManaConfig, ManaRuntime};
use mpisim::WorldCfg;
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

const N: usize = 3;

fn ckpt_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mana2_a2a_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn wcfg() -> WorldCfg {
    WorldCfg {
        watchdog: Some(Duration::from_secs(60)),
        ..WorldCfg::default()
    }
}

/// Two back-to-back alltoalls (the second proves the fabric and the emu
/// sequence numbers are healthy after the resume). `interrupt` makes rank
/// 0 request a checkpoint and stall so its peers park inside the first
/// alltoall before the intent is serviced.
type TwoRounds = (Vec<Vec<u8>>, Vec<Vec<u8>>);

fn run(chunks: &[Vec<Vec<u8>>], interrupt: bool, name: &str) -> (Vec<TwoRounds>, usize, Vec<u64>) {
    let dir = ckpt_dir(name);
    let rt = ManaRuntime::new(
        N,
        ManaConfig {
            ckpt_dir: dir.clone(),
            ..ManaConfig::default()
        },
    )
    .with_world_cfg(wcfg());
    let chunks = chunks.to_vec();
    let report = rt
        .run_fresh(move |m| {
            let w = m.comm_world();
            let me = m.rank();
            if interrupt && me == 0 {
                // Let peers enter the alltoall and park mid-state-machine
                // (they need rank 0's chunks to finish), then land the
                // intent while they are parked.
                std::thread::sleep(Duration::from_millis(60));
                m.request_checkpoint()?;
            }
            let out1 = m.alltoall(w, &chunks[me])?;
            let rev: Vec<Vec<u8>> = chunks[me].iter().rev().cloned().collect();
            let out2 = m.alltoall(w, &rev)?;
            Ok((out1, out2))
        })
        .unwrap();
    let rounds = report.coord.rounds.len();
    let gids = report
        .coord
        .rounds
        .first()
        .map(|r| r.gids_in_flight.clone())
        .unwrap_or_default();
    let values = report.values();
    std::fs::remove_dir_all(&dir).ok();
    (values, rounds, gids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn checkpoint_mid_alltoall_preserves_buffers(
        sizes in proptest::collection::vec(0usize..48, N * N),
        fill in any::<u8>(),
    ) {
        // chunks[i][j]: what rank i sends to rank j. Sizes may be zero —
        // exactly the messages a byte-only drain would lose.
        let chunks: Vec<Vec<Vec<u8>>> = (0..N)
            .map(|i| {
                (0..N)
                    .map(|j| vec![fill ^ (i * 16 + j) as u8; sizes[i * N + j]])
                    .collect()
            })
            .collect();

        let (reference, ref_rounds, _) = run(&chunks, false, "ref");
        prop_assert_eq!(ref_rounds, 0, "reference run must not checkpoint");

        let (interrupted, rounds, gids) = run(&chunks, true, "ckpt");
        prop_assert_eq!(rounds, 1, "the interrupted run must checkpoint once");
        prop_assert!(
            !gids.is_empty(),
            "at least one rank must report being parked inside the collective"
        );
        prop_assert_eq!(&interrupted, &reference);

        // Both must match the analytic alltoall semantics: rank j's first
        // output is column j of the chunk matrix.
        for (j, (out1, _)) in reference.iter().enumerate() {
            for i in 0..N {
                prop_assert_eq!(&out1[i], &chunks[i][j]);
            }
        }
    }
}
