//! Acceptance check for the flight recorder: a run that dies with a
//! `RuntimeError` must leave a JSONL + Chrome-trace dump behind, and the
//! dump must be well-formed and contain the recorded events.

use mana_core::{obs, DrainMode, ManaConfig, ManaRuntime, RuntimeError, TpcMode};
use mpisim::{SrcSel, TagSel};
use std::time::Duration;

#[test]
fn runtime_failure_dumps_flight_recorder() {
    let sink = obs::TraceSink::wall(2, 4096);
    // Drain pinned to alltoall: the guaranteed deadlock below is the
    // alltoall strategy's pre-collective barrier, which the toposort
    // drain (e.g. via a MANA2_DRAIN override) removes by design.
    let cfg = ManaConfig {
        tpc: TpcMode::Original,
        drain: DrainMode::Alltoall,
        deadlock_timeout: Some(Duration::from_millis(400)),
        trace: Some(sink.clone()),
        ckpt_dir: std::env::temp_dir().join(format!("mana2_tdf_{}", std::process::id())),
        ..ManaConfig::default()
    };
    // The §III-E deadlock pattern — guaranteed RuntimeError::Deadlock.
    let res = ManaRuntime::new(2, cfg).run_fresh(|m| {
        let w = m.comm_world();
        if m.rank() == 0 {
            let mut d = vec![1u64];
            m.bcast_t(w, 0, &mut d)?;
            m.send_t(w, 1, 1, &[2u64])?;
        } else {
            let _ = m.recv_t::<u64>(w, SrcSel::Rank(0), TagSel::Tag(1))?;
            let mut d: Vec<u64> = vec![];
            m.bcast_t(w, 0, &mut d)?;
        }
        Ok(())
    });
    assert!(matches!(res, Err(RuntimeError::Deadlock(_))), "{res:?}");

    // The dump label is `mana2_deadlock_<pid>_<counter>`, so this
    // process's failure is findable without capturing stderr (the CLI
    // user gets the exact path printed in the failure report).
    let dir = obs::default_trace_dir();
    let prefix = format!("mana2_deadlock_{}_", std::process::id());
    let jsonl = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("trace dir {} missing: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".jsonl"))
        })
        .expect("deadlock should have dumped a JSONL trace");
    assert!(
        jsonl.with_extension("chrome.json").exists(),
        "chrome-trace sibling missing for {}",
        jsonl.display()
    );

    let text = std::fs::read_to_string(&jsonl).unwrap();
    let report = obs::analyze::check(&text).expect("dump is schema-valid");
    assert!(report.events > 0, "dump should contain the recorded events");
    let (_, events) = obs::parse_jsonl(&text).unwrap();
    assert_eq!(events.len(), sink.merged().len());

    let _ = std::fs::remove_file(&jsonl);
    let _ = std::fs::remove_file(jsonl.with_extension("chrome.json"));
}
