//! One-sided (`MPI_Win_*`) checkpoint/restart integration tests — the
//! paper's roadmap item (§II-B) implemented and verified.

use mana_core::{ManaConfig, ManaRuntime, VWin};
use mpisim::{Datatype, ReduceOp, WorldCfg};
use std::path::PathBuf;
use std::time::Duration;

fn ckpt_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mana2_win_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn wcfg() -> WorldCfg {
    WorldCfg {
        watchdog: Some(Duration::from_secs(60)),
        ..WorldCfg::default()
    }
}

#[test]
fn rma_ring_under_mana() {
    let n = 4;
    let rt = ManaRuntime::new(
        n,
        ManaConfig {
            ckpt_dir: ckpt_dir("ring"),
            ..ManaConfig::default()
        },
    )
    .with_world_cfg(wcfg());
    let out = rt
        .run_fresh(|m| {
            let w = m.comm_world();
            let win = m.win_create(w, 8)?;
            m.win_fence(win)?;
            let right = (m.rank() + 1) % m.world_size();
            m.win_put(win, right, 0, &[m.rank() as u8 + 1])?;
            m.win_fence(win)?;
            let got = m.win_get(win, m.rank(), 0, 1)?[0];
            m.win_fence(win)?;
            m.win_free(win)?;
            assert_eq!(m.live_wins(), 0);
            Ok(got as usize)
        })
        .unwrap()
        .values();
    assert_eq!(out, vec![4, 1, 2, 3]);
}

#[test]
fn window_contents_survive_resume_checkpoint() {
    let n = 3;
    let dir = ckpt_dir("resume");
    let rt = ManaRuntime::new(
        n,
        ManaConfig {
            ckpt_dir: dir.clone(),
            ..ManaConfig::default()
        },
    )
    .with_world_cfg(wcfg());
    let report = rt
        .run_fresh(|m| {
            let w = m.comm_world();
            let win = m.win_create(w, 16)?;
            m.win_put(win, m.rank(), 0, &[0xC0 | m.rank() as u8])?;
            m.win_fence(win)?;
            if m.rank() == 0 {
                m.request_checkpoint()?;
            }
            m.barrier(w)?; // checkpoint lands here
                           // Post-resume: contents intact, RMA still works.
            let mine = m.win_get(win, m.rank(), 0, 1)?[0];
            assert_eq!(mine, 0xC0 | m.rank() as u8);
            m.win_accumulate(
                win,
                (m.rank() + 1) % m.world_size(),
                8,
                Datatype::U64,
                ReduceOp::Sum,
                &mpisim::encode_slice(&[1u64]),
            )?;
            m.win_fence(win)?;
            let counter = m.win_get(win, m.rank(), 8, 8)?;
            Ok(u64::from_le_bytes(counter[..8].try_into().unwrap()))
        })
        .unwrap();
    assert_eq!(report.coord.rounds.len(), 1);
    assert_eq!(report.values(), vec![1, 1, 1]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn window_contents_survive_restart() {
    // The full roadmap scenario: window created and filled, checkpoint-
    // and-kill, restart rebuilds the window over the rebuilt communicator
    // and restores every rank's region.
    let n = 3;
    let dir = ckpt_dir("restart");
    let cfg = ManaConfig {
        ckpt_dir: dir.clone(),
        exit_after_ckpt: true,
        ..ManaConfig::default()
    };
    let work = |m: &mut mana_core::Mana<'_>| -> mana_core::Result<Vec<u8>> {
        let w = m.comm_world();
        let phase = m
            .upper()
            .read_value::<u64>("phase")
            .transpose()?
            .unwrap_or(0);
        if phase == 0 {
            let win = m.win_create(w, 4)?;
            // Everyone writes into everyone (offset = my rank).
            m.win_fence(win)?;
            for t in 0..m.world_size() {
                m.win_put(win, t, m.rank(), &[(10 * m.rank()) as u8 + t as u8])?;
            }
            m.win_fence(win)?;
            m.upper_mut().write_value("win", &win.0);
            m.upper_mut().write_value("phase", &1u64);
            if m.rank() == 0 {
                m.request_checkpoint()?;
            }
            m.step_commit()?; // checkpoint-and-kill here
        }
        let win = VWin(m.upper().read_value::<u64>("win").transpose()?.unwrap());
        // After restart: the stable virtual id still resolves, and the
        // region holds what peers put there before the checkpoint.
        let mine = m.win_get(win, m.rank(), 0, m.world_size())?;
        m.win_fence(win)?;
        m.win_free(win)?;
        Ok(mine)
    };
    let pass1 = ManaRuntime::new(n, cfg.clone())
        .with_world_cfg(wcfg())
        .run_fresh(work)
        .unwrap();
    assert!(pass1.all_checkpointed());
    let pass2 = ManaRuntime::new(n, cfg)
        .with_world_cfg(wcfg())
        .run_restart(work)
        .unwrap();
    let vals = pass2.values();
    for (me, row) in vals.iter().enumerate() {
        for (src, &b) in row.iter().enumerate() {
            assert_eq!(b, (10 * src + me) as u8, "rank {me} slot {src}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rma_out_of_bounds_is_reported() {
    let rt = ManaRuntime::new(
        1,
        ManaConfig {
            ckpt_dir: ckpt_dir("oob"),
            ..ManaConfig::default()
        },
    )
    .with_world_cfg(wcfg());
    rt.run_fresh(|m| {
        let w = m.comm_world();
        let win = m.win_create(w, 2)?;
        assert!(m.win_put(win, 0, 1, &[0u8; 4]).is_err());
        assert!(m.win_get(win, 0, 0, 3).is_err());
        m.win_free(win)?;
        Ok(())
    })
    .unwrap();
}
