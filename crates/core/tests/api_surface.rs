//! Coverage of the wider MANA API surface: waitany/testall over virtual
//! requests, Fortran-shim entry points, iprobe, and table hygiene.

use mana_core::{FortranConstants, ManaConfig, ManaRuntime, NamedConstant};
use mpisim::{ReduceOp, SrcSel, TagSel, WorldCfg};
use std::time::Duration;

fn rt(name: &str, n: usize) -> ManaRuntime {
    ManaRuntime::new(
        n,
        ManaConfig {
            ckpt_dir: std::env::temp_dir().join(format!("mana2_api_{name}_{}", std::process::id())),
            ..ManaConfig::default()
        },
    )
    .with_world_cfg(WorldCfg {
        watchdog: Some(Duration::from_secs(30)),
        ..WorldCfg::default()
    })
}

#[test]
fn waitany_over_virtual_requests() {
    let out = rt("waitany", 3)
        .run_fresh(|m| {
            let w = m.comm_world();
            if m.rank() == 0 {
                let r1 = m.irecv(w, SrcSel::Rank(1), TagSel::Tag(1))?;
                let r2 = m.irecv(w, SrcSel::Rank(2), TagSel::Tag(2))?;
                let mut reqs = [r1, r2];
                let (i, c) = m.waitany(&mut reqs)?;
                assert!(reqs[i].is_null(), "completed slot nulled");
                let first = c.data[0];
                let (_j, c2) = m.waitany(&mut reqs)?;
                assert!(reqs.iter().all(|r| r.is_null()));
                assert_eq!(m.live_requests(), 0);
                Ok(first as u64 + c2.data[0] as u64)
            } else {
                m.send(w, 0, m.rank() as i32, &[m.rank() as u8 * 7])?;
                Ok(0)
            }
        })
        .unwrap()
        .values();
    assert_eq!(out[0], 7 + 14);
}

#[test]
fn testall_all_or_nothing_virtual() {
    rt("testall", 2)
        .run_fresh(|m| {
            let w = m.comm_world();
            if m.rank() == 0 {
                let r1 = m.irecv(w, SrcSel::Rank(1), TagSel::Tag(1))?;
                let r2 = m.irecv(w, SrcSel::Rank(1), TagSel::Tag(2))?;
                let mut reqs = [r1, r2];
                // Second message is gated on our go-signal: testall must
                // keep returning None without consuming the first.
                let mut saw_none = false;
                for _ in 0..50 {
                    if m.testall(&mut reqs)?.is_none() {
                        saw_none = true;
                        break;
                    }
                }
                assert!(saw_none);
                assert_eq!(m.live_requests(), 2);
                m.send(w, 1, 3, &[0])?;
                loop {
                    if let Some(cs) = m.testall(&mut reqs)? {
                        assert_eq!(cs.len(), 2);
                        assert!(reqs.iter().all(|r| r.is_null()));
                        assert_eq!(m.live_requests(), 0);
                        break;
                    }
                    m.park(Duration::from_millis(1))?;
                }
            } else {
                m.send(w, 0, 1, &[1])?;
                let _ = m.recv(w, SrcSel::Rank(0), TagSel::Tag(3))?;
                m.send(w, 0, 2, &[2])?;
            }
            Ok(())
        })
        .unwrap();
}

#[test]
fn fortran_in_place_allreduce() {
    let out = rt("f_inplace", 4)
        .run_fresh(|m| {
            let fc = FortranConstants::discover();
            let w = m.comm_world();
            let mine = [m.rank() as f64 + 1.0];
            // Fortran caller passing MPI_IN_PLACE: sendbuf address IS the
            // named constant; recvbuf holds the contribution.
            let got = m.f_allreduce(
                &fc,
                fc.address_of(NamedConstant::InPlace),
                None,
                &mine,
                w,
                ReduceOp::Sum,
            )?;
            Ok(got[0])
        })
        .unwrap()
        .values();
    assert_eq!(out, vec![10.0; 4]);
}

#[test]
fn fortran_status_ignore_recv() {
    rt("f_status", 2)
        .run_fresh(|m| {
            let fc = FortranConstants::discover();
            let w = m.comm_world();
            if m.rank() == 0 {
                m.send(w, 1, 4, &[9])?;
            } else {
                let (st, data) = m.f_recv(
                    &fc,
                    w,
                    SrcSel::Rank(0),
                    TagSel::Tag(4),
                    fc.address_of(NamedConstant::StatusIgnore),
                )?;
                assert!(st.is_none(), "status ignored");
                assert_eq!(data, vec![9]);
                // A real (stack) address: status delivered.
                m.send(w, 1, 5, &[8])?; // self-send for the second recv
                let local = 0u64;
                let (st, _d) = m.f_recv(
                    &fc,
                    w,
                    SrcSel::Rank(1),
                    TagSel::Tag(5),
                    &local as *const u64 as usize,
                )?;
                assert!(st.is_some());
            }
            Ok(())
        })
        .unwrap();
}

#[test]
fn iprobe_sees_drain_buffer_after_checkpoint() {
    rt("iprobe_drain", 2)
        .run_fresh(|m| {
            let w = m.comm_world();
            if m.rank() == 0 {
                m.send(w, 1, 6, &[1, 2, 3])?;
                m.request_checkpoint()?;
                m.barrier(w)?;
                Ok(0)
            } else {
                m.barrier(w)?; // message drained during the checkpoint here
                               // iprobe must surface the buffered message.
                let st = m.iprobe(w, SrcSel::Rank(0), TagSel::Tag(6))?;
                let st = st.expect("drained message visible to iprobe");
                assert_eq!(st.len, 3);
                let (_, data) = m.recv(w, SrcSel::Rank(0), TagSel::Tag(6))?;
                assert_eq!(data, vec![1, 2, 3]);
                Ok(1)
            }
        })
        .unwrap();
}
