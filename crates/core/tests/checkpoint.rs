//! End-to-end checkpoint/restart integration tests for the MANA-2.0 layer.

use mana_core::{
    CallbackStyle, CommRestore, DrainMode, ManaConfig, ManaRuntime, RuntimeError, TpcMode, VReq,
    VtBackend,
};
use mpisim::{ReduceOp, SrcSel, TagSel, WorldCfg};
use splitproc::FsMode;
use std::path::PathBuf;
use std::time::Duration;

fn ckpt_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mana2_test_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn cfg(name: &str) -> ManaConfig {
    ManaConfig {
        ckpt_dir: ckpt_dir(name),
        ..ManaConfig::default()
    }
}

fn wcfg() -> WorldCfg {
    WorldCfg {
        watchdog: Some(Duration::from_secs(60)),
        ..WorldCfg::default()
    }
}

#[test]
fn mana_matches_native_semantics() {
    // Ring p2p + allreduce under MANA gives the same numbers as raw mpisim.
    let n = 5;
    let rt = ManaRuntime::new(n, cfg("native_match")).with_world_cfg(wcfg());
    let report = rt
        .run_fresh(|m| {
            let w = m.comm_world();
            let right = (m.rank() + 1) % m.world_size();
            let left = (m.rank() + m.world_size() - 1) % m.world_size();
            m.send_t(w, right, 3, &[m.rank() as u64 * 7])?;
            let (st, got) = m.recv_t::<u64>(w, SrcSel::Rank(left), TagSel::Tag(3))?;
            assert_eq!(st.source, left);
            let sum = m.allreduce_t(w, ReduceOp::Sum, &got)?;
            Ok(sum[0])
        })
        .unwrap();
    let expect: u64 = (0..n as u64).map(|r| r * 7).sum();
    assert_eq!(report.values(), vec![expect; n]);
}

#[test]
fn resume_checkpoint_mid_run() {
    let n = 4;
    let config = cfg("resume_mid");
    let dir = config.ckpt_dir.clone();
    let rt = ManaRuntime::new(n, config).with_world_cfg(wcfg());
    let report = rt
        .run_fresh(|m| {
            let w = m.comm_world();
            let mut acc = 0u64;
            for step in 0..6u64 {
                if step == 2 && m.rank() == 0 && m.round() == 0 {
                    m.request_checkpoint()?;
                }
                let s = m.allreduce_t(w, ReduceOp::Sum, &[step + m.rank() as u64])?;
                acc += s[0];
            }
            Ok(acc)
        })
        .unwrap();
    assert!(report.all_finished());
    // All ranks computed identical sums.
    let vals = report.values();
    assert!(vals.windows(2).all(|w| w[0] == w[1]));
    // Exactly one checkpoint round happened; the committed generation
    // holds a valid image per rank.
    let sel = splitproc::store::select_generation(&dir, Some(n)).expect("committed generation");
    assert_eq!(sel.round, 0);
    for r in 0..n {
        // Layout-aware: loads the flat `.mana` file or reassembles the
        // `.cref` recipe from the chunk pool, whichever the configured
        // `MANA2_STORE` mode wrote.
        assert!(
            splitproc::store::load_image(&sel.dir, r).is_ok(),
            "image for rank {r}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn drain_captures_in_flight_messages() {
    let n = 2;
    let config = cfg("drain_inflight");
    let dir = config.ckpt_dir.clone();
    let rt = ManaRuntime::new(n, config).with_world_cfg(wcfg());
    let report = rt
        .run_fresh(|m| {
            let w = m.comm_world();
            if m.rank() == 0 {
                for i in 0..3i32 {
                    m.send(w, 1, i, &vec![i as u8; 10 * (i as usize + 1)])?;
                }
                m.request_checkpoint()?;
                m.barrier(w)?;
                Ok(0usize)
            } else {
                // Messages are in flight while rank 1 sits in the barrier.
                m.barrier(w)?;
                let mut total = 0usize;
                for i in 0..3i32 {
                    let (st, data) = m.recv(w, SrcSel::Rank(0), TagSel::Tag(i))?;
                    assert_eq!(st.tag, i);
                    assert_eq!(data, vec![i as u8; 10 * (i as usize + 1)]);
                    total += data.len();
                }
                Ok(total)
            }
        })
        .unwrap();
    assert_eq!(report.outcomes.len(), 2);
    // Rank 1 must have drained the three messages at checkpoint time.
    assert_eq!(report.rank_stats[1].drained_msgs, 3);
    assert_eq!(report.rank_stats[1].drained_bytes, 10 + 20 + 30);
    assert_eq!(report.coord.rounds.len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn two_step_retirement_of_drained_irecv() {
    // An irecv posted before the checkpoint is completed *by the drain*;
    // the application's later wait observes the nulled binding (step two)
    // and its request variable is overwritten with MPI_REQUEST_NULL.
    let n = 2;
    let config = cfg("two_step");
    let dir = config.ckpt_dir.clone();
    let rt = ManaRuntime::new(n, config).with_world_cfg(wcfg());
    rt.run_fresh(|m| {
        let w = m.comm_world();
        if m.rank() == 1 {
            let mut req = m.irecv(w, SrcSel::Rank(0), TagSel::Tag(9))?;
            m.barrier(w)?; // let rank 0 send + trigger
            m.barrier(w)?; // checkpoint happens inside this barrier window
            let c = m.wait(&mut req)?;
            assert_eq!(c.data, vec![42u8; 8]);
            assert!(req.is_null(), "request variable must be nulled");
            assert_eq!(m.live_requests(), 0, "table fully pruned");
        } else {
            m.barrier(w)?;
            m.send(w, 1, 9, &[42u8; 8])?;
            m.request_checkpoint()?;
            m.barrier(w)?;
        }
        Ok(())
    })
    .unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Step-loop workload shared by the restart tests: accumulates allreduce
/// results into upper-half state, requests a checkpoint at step 3 on the
/// first pass, and resumes from the recorded step after restart.
fn step_workload(m: &mut mana_core::Mana<'_>, total_steps: u64) -> mana_core::Result<u64> {
    let w = m.comm_world();
    let mut step = m
        .upper()
        .read_value::<u64>("step")
        .transpose()?
        .unwrap_or(0);
    let mut acc = m.upper().read_value::<u64>("acc").transpose()?.unwrap_or(0);
    while step < total_steps {
        if step == 3 && m.round() == 0 && m.rank() == 0 {
            m.request_checkpoint()?;
        }
        let s = m.allreduce_t(w, ReduceOp::Sum, &[step * 10 + m.rank() as u64])?;
        acc += s[0];
        step += 1;
        m.upper_mut().write_value("step", &step);
        m.upper_mut().write_value("acc", &acc);
        m.step_commit()?;
    }
    Ok(acc)
}

#[test]
fn checkpoint_exit_and_restart_continues() {
    let n = 4;
    let mut config = cfg("exit_restart");
    config.exit_after_ckpt = true;
    let dir = config.ckpt_dir.clone();
    let total = 8u64;

    // Reference: uninterrupted run.
    let ref_cfg = ManaConfig {
        ckpt_dir: ckpt_dir("exit_restart_ref"),
        ..ManaConfig::default()
    };
    let reference = ManaRuntime::new(n, ref_cfg)
        .with_world_cfg(wcfg())
        .run_fresh(|m| step_workload(m, total))
        .unwrap()
        .values();

    // Pass 1: checkpoint at step 4 boundary, exit.
    let rt = ManaRuntime::new(n, config.clone()).with_world_cfg(wcfg());
    let pass1 = rt.run_fresh(|m| step_workload(m, total)).unwrap();
    assert!(pass1.all_checkpointed(), "{:?}", pass1.outcomes);
    assert_eq!(pass1.coord.rounds.len(), 1);

    // Pass 2: restart from images; the workload resumes at the recorded
    // step and finishes.
    let rt2 = ManaRuntime::new(n, config).with_world_cfg(wcfg());
    let pass2 = rt2.run_restart(|m| step_workload(m, total)).unwrap();
    assert!(pass2.all_finished());
    assert_eq!(pass2.values(), reference);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restart_rebuilds_subcommunicators_from_active_list() {
    let n = 4;
    let mut config = cfg("subcomm_restart");
    config.exit_after_ckpt = true;
    let dir = config.ckpt_dir.clone();

    let work = |m: &mut mana_core::Mana<'_>| -> mana_core::Result<u64> {
        let w = m.comm_world();
        let phase = m
            .upper()
            .read_value::<u64>("phase")
            .transpose()?
            .unwrap_or(0);
        if phase == 0 {
            // Build comms: a dup (freed before ckpt) and an even/odd split
            // (kept). Store the split's *virtual id* in upper-half memory —
            // virtual IDs are restart-stable (§II-C).
            let dup = m.comm_dup(w)?;
            m.barrier(dup)?;
            m.comm_free(dup)?;
            let sub = m.comm_split(w, (m.rank() % 2) as i32, 0)?.unwrap();
            m.upper_mut().write_value("sub_vid", &sub.0);
            m.upper_mut().write_value("phase", &1u64);
            if m.rank() == 0 {
                m.request_checkpoint()?;
            }
            m.step_commit()?;
        }
        // Phase 1 (after restart): use the stored virtual communicator.
        let sub = mana_core::VComm(
            m.upper()
                .read_value::<u64>("sub_vid")
                .transpose()?
                .expect("sub_vid saved"),
        );
        let sum = m.allreduce_t(sub, ReduceOp::Sum, &[m.rank() as u64])?;
        Ok(sum[0])
    };

    let pass1 = ManaRuntime::new(n, config.clone())
        .with_world_cfg(wcfg())
        .run_fresh(work)
        .unwrap();
    assert!(pass1.all_checkpointed());

    let pass2 = ManaRuntime::new(n, config)
        .with_world_cfg(wcfg())
        .run_restart(work)
        .unwrap();
    // Evens {0,2} sum=2; odds {1,3} sum=4.
    assert_eq!(pass2.values(), vec![2, 4, 2, 4]);
    // Active-list restart recreated only the split comm (dup was freed):
    // restored_comms == 1 per rank.
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_log_restart_recreates_freed_comms() {
    let n = 2;
    let mut config = cfg("replay_restart");
    config.exit_after_ckpt = true;
    config.comm_restore = CommRestore::ReplayLog;
    let dir = config.ckpt_dir.clone();

    let work = |m: &mut mana_core::Mana<'_>| -> mana_core::Result<(u64, u64)> {
        let w = m.comm_world();
        let phase = m
            .upper()
            .read_value::<u64>("phase")
            .transpose()?
            .unwrap_or(0);
        if phase == 0 {
            for _ in 0..3 {
                let d = m.comm_dup(w)?;
                m.barrier(d)?;
                m.comm_free(d)?;
            }
            let keep = m.comm_dup(w)?;
            m.upper_mut().write_value("keep", &keep.0);
            m.upper_mut().write_value("phase", &1u64);
            if m.rank() == 0 {
                m.request_checkpoint()?;
            }
            m.step_commit()?;
        }
        let keep = mana_core::VComm(m.upper().read_value::<u64>("keep").transpose()?.unwrap());
        let sum = m.allreduce_t(keep, ReduceOp::Sum, &[1u64])?;
        let stats = m.stats();
        Ok((sum[0], stats.replayed_calls))
    };

    ManaRuntime::new(n, config.clone())
        .with_world_cfg(wcfg())
        .run_fresh(work)
        .unwrap();
    let pass2 = ManaRuntime::new(n, config)
        .with_world_cfg(wcfg())
        .run_restart(work)
        .unwrap();
    let vals = pass2.values();
    for (sum, replayed) in vals {
        assert_eq!(sum, n as u64);
        // 3 freed dups (create+free) + 1 kept dup = 7 logged calls replayed.
        assert_eq!(replayed, 7, "replay-log baseline replays freed comms");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn original_tpc_deadlocks_hybrid_does_not() {
    // Paper §III-E: rank 0 bcasts (as root) then sends; rank 1 receives
    // then bcasts. Legal MPI; deadlocks iff a barrier precedes the bcast.
    let scenario = |m: &mut mana_core::Mana<'_>| -> mana_core::Result<u64> {
        let w = m.comm_world();
        if m.rank() == 0 {
            let mut data = vec![5u64];
            m.bcast_t(w, 0, &mut data)?; // root: must not wait for rank 1
            m.send_t(w, 1, 1, &[9u64])?;
            Ok(0)
        } else {
            let (_, go) = m.recv_t::<u64>(w, SrcSel::Rank(0), TagSel::Tag(1))?;
            assert_eq!(go[0], 9);
            let mut data: Vec<u64> = vec![];
            m.bcast_t(w, 0, &mut data)?;
            Ok(data[0])
        }
    };

    let deadline = WorldCfg {
        watchdog: Some(Duration::from_millis(700)),
        ..WorldCfg::default()
    };

    // Hybrid: completes.
    let hybrid = ManaRuntime::new(2, cfg("deadlock_hybrid"))
        .with_world_cfg(deadline.clone())
        .run_fresh(scenario)
        .unwrap();
    assert_eq!(hybrid.values(), vec![0, 5]);

    // Original: the injected barrier deadlocks; the watchdog converts the
    // hang into an error. The drain is pinned because the barrier under
    // test is the alltoall strategy's pre-collective gate — the toposort
    // drain (e.g. via a MANA2_DRAIN override) removes it by design.
    let mut oc = cfg("deadlock_original");
    oc.tpc = TpcMode::Original;
    oc.drain = DrainMode::Alltoall;
    let res = ManaRuntime::new(2, oc)
        .with_world_cfg(deadline)
        .run_fresh(scenario);
    assert!(
        matches!(
            res,
            Err(RuntimeError::Rank(_, _)) | Err(RuntimeError::World(_))
        ),
        "original 2PC must deadlock here"
    );
}

#[test]
fn straggler_checkpoint_while_peers_wait_in_collective() {
    let n = 3;
    let config = cfg("straggler");
    let dir = config.ckpt_dir.clone();
    let rt = ManaRuntime::new(n, config).with_world_cfg(wcfg());
    let report = rt
        .run_fresh(|m| {
            let w = m.comm_world();
            if m.rank() == 0 {
                // The straggler: give peers time to park inside the
                // (emulated, checkpointable) barrier, then request the
                // checkpoint and keep computing. The checkpoint must
                // proceed while ranks 1,2 wait in the barrier.
                std::thread::sleep(Duration::from_millis(150));
                m.request_checkpoint()?;
                m.compute(2_000_000)?;
            }
            m.barrier(w)?;
            Ok(m.stats().ckpts)
        })
        .unwrap();
    assert!(report.all_finished());
    assert_eq!(report.coord.rounds.len(), 1);
    // Peers parked inside a collective reported its gid (§III-K).
    assert!(
        !report.coord.rounds[0].gids_in_flight.is_empty(),
        "waiting ranks must report their collective gid"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn nonblocking_collective_across_resume() {
    let n = 4;
    let config = cfg("nb_resume");
    let dir = config.ckpt_dir.clone();
    let rt = ManaRuntime::new(n, config).with_world_cfg(wcfg());
    let report = rt
        .run_fresh(|m| {
            let w = m.comm_world();
            let contrib = mpisim::encode_slice(&[m.rank() as u64 + 1]);
            let mut req = m.iallreduce(w, mpisim::Datatype::U64, ReduceOp::Sum, &contrib)?;
            if m.rank() == 0 {
                m.request_checkpoint()?;
            }
            // The wait services the checkpoint mid-collective.
            let c = m.wait(&mut req)?;
            assert!(req.is_null());
            let v = mpisim::decode_slice::<u64>(&c.data).unwrap();
            Ok(v[0])
        })
        .unwrap();
    assert_eq!(report.values(), vec![10, 10, 10, 10]); // 1+2+3+4
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn nonblocking_collective_across_restart() {
    // The §III-A log-and-replay showcase: an iallreduce is in flight at
    // checkpoint-and-exit; after restart the stored *virtual request id*
    // (kept in upper-half memory) is still valid and completes.
    let n = 3;
    let mut config = cfg("nb_restart");
    config.exit_after_ckpt = true;
    let dir = config.ckpt_dir.clone();

    let work = |m: &mut mana_core::Mana<'_>| -> mana_core::Result<u64> {
        let w = m.comm_world();
        let phase = m
            .upper()
            .read_value::<u64>("phase")
            .transpose()?
            .unwrap_or(0);
        if phase == 0 {
            let contrib = mpisim::encode_slice(&[(m.rank() as u64 + 1) * 100]);
            let req = m.iallreduce(w, mpisim::Datatype::U64, ReduceOp::Sum, &contrib)?;
            m.upper_mut().write_value("req", &req.0);
            m.upper_mut().write_value("phase", &1u64);
            if m.rank() == 0 {
                m.request_checkpoint()?;
            }
            m.step_commit()?; // checkpoint-and-exit happens here
        }
        let mut req = VReq(
            m.upper()
                .read_value::<u64>("req")
                .transpose()?
                .expect("saved request id"),
        );
        let c = m.wait(&mut req)?;
        assert!(req.is_null());
        let v = mpisim::decode_slice::<u64>(&c.data).unwrap();
        Ok(v[0])
    };

    let pass1 = ManaRuntime::new(n, config.clone())
        .with_world_cfg(wcfg())
        .run_fresh(work)
        .unwrap();
    assert!(pass1.all_checkpointed());

    let pass2 = ManaRuntime::new(n, config)
        .with_world_cfg(wcfg())
        .run_restart(work)
        .unwrap();
    assert_eq!(pass2.values(), vec![600, 600, 600]); // 100+200+300
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pending_irecv_reposts_after_restart() {
    // A pending irecv at checkpoint-and-exit whose message was never sent:
    // after restart the (re-executed) sender provides it and the stored
    // virtual request completes via lazy re-posting.
    let n = 2;
    let mut config = cfg("repost_restart");
    config.exit_after_ckpt = true;
    let dir = config.ckpt_dir.clone();

    let work = |m: &mut mana_core::Mana<'_>| -> mana_core::Result<u64> {
        let w = m.comm_world();
        let phase = m
            .upper()
            .read_value::<u64>("phase")
            .transpose()?
            .unwrap_or(0);
        if phase == 0 {
            if m.rank() == 1 {
                // Post a receive whose message only arrives after restart.
                let req = m.irecv(w, SrcSel::Rank(0), TagSel::Tag(5))?;
                m.upper_mut().write_value("req", &req.0);
            }
            m.upper_mut().write_value("phase", &1u64);
            if m.rank() == 0 {
                m.request_checkpoint()?;
            }
            m.step_commit()?;
        }
        if m.rank() == 0 {
            m.send_t(w, 1, 5, &[77u64])?;
            Ok(0)
        } else {
            let mut req = VReq(m.upper().read_value::<u64>("req").transpose()?.unwrap());
            let c = m.wait(&mut req)?;
            Ok(mpisim::decode_slice::<u64>(&c.data).unwrap()[0])
        }
    };

    let pass1 = ManaRuntime::new(n, config.clone())
        .with_world_cfg(wcfg())
        .run_fresh(work)
        .unwrap();
    assert!(pass1.all_checkpointed());
    let pass2 = ManaRuntime::new(n, config)
        .with_world_cfg(wcfg())
        .run_restart(work)
        .unwrap();
    assert_eq!(pass2.values(), vec![0, 77]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn drained_irecv_completion_survives_restart() {
    // §III-A two-step retirement split across an exit-restart cycle.
    // Step one happens before the exit: the drain completes the posted
    // irecv and parks the payload as a stored completion inside the
    // image. Step two happens in the *restarted* process: the
    // application's wait observes the nulled binding, hands the stored
    // payload over, and retires the virtual request.
    let n = 2;
    let mut config = cfg("two_step_restart");
    config.exit_after_ckpt = true;
    let dir = config.ckpt_dir.clone();

    let work = |m: &mut mana_core::Mana<'_>| -> mana_core::Result<u64> {
        let w = m.comm_world();
        let phase = m
            .upper()
            .read_value::<u64>("phase")
            .transpose()?
            .unwrap_or(0);
        if phase == 0 {
            if m.rank() == 1 {
                let req = m.irecv(w, SrcSel::Rank(0), TagSel::Tag(9))?;
                m.upper_mut().write_value("req", &req.0);
            } else {
                // Counted in the sent row before the trigger, so rank 1's
                // drain cannot finish without claiming this message.
                m.send_t(w, 1, 9, &[0xBEEFu64, 0xCAFE])?;
                m.request_checkpoint()?;
            }
            m.upper_mut().write_value("phase", &1u64);
            m.step_commit()?; // checkpoint-and-exit happens here
        }
        if m.rank() == 1 {
            let mut req = VReq(
                m.upper()
                    .read_value::<u64>("req")
                    .transpose()?
                    .expect("saved request id"),
            );
            let c = m.wait(&mut req)?;
            assert!(req.is_null(), "step two must null the request variable");
            assert_eq!(m.live_requests(), 0, "table fully pruned after step two");
            Ok(mpisim::decode_slice::<u64>(&c.data).unwrap()[0])
        } else {
            Ok(0)
        }
    };

    let pass1 = ManaRuntime::new(n, config.clone())
        .with_world_cfg(wcfg())
        .run_fresh(work)
        .unwrap();
    assert!(pass1.all_checkpointed(), "{:?}", pass1.outcomes);
    assert!(
        pass1.rank_stats[1].drained_msgs >= 1,
        "the irecv must be completed by the drain (step one), not the app"
    );

    let pass2 = ManaRuntime::new(n, config)
        .with_world_cfg(wcfg())
        .run_restart(work)
        .unwrap();
    assert_eq!(pass2.values(), vec![0, 0xBEEF]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn legacy_coordinator_drain_works_but_is_chattier() {
    let n = 2;
    let mut legacy = cfg("legacy_drain");
    legacy.drain = DrainMode::Coordinator;
    let dir = legacy.ckpt_dir.clone();
    let work = |m: &mut mana_core::Mana<'_>| -> mana_core::Result<Vec<u8>> {
        let w = m.comm_world();
        if m.rank() == 0 {
            m.send(w, 1, 0, &[7u8; 64])?;
            m.request_checkpoint()?;
            m.barrier(w)?;
            Ok(vec![])
        } else {
            m.barrier(w)?;
            let (_, d) = m.recv(w, SrcSel::Rank(0), TagSel::Tag(0))?;
            Ok(d)
        }
    };
    let legacy_report = ManaRuntime::new(n, legacy)
        .with_world_cfg(wcfg())
        .run_fresh(work)
        .unwrap();
    assert_eq!(legacy_report.outcomes.len(), 2);
    let legacy_msgs = legacy_report.coord.rounds[0].coord_msgs;

    let modern_report = ManaRuntime::new(n, cfg("modern_drain"))
        .with_world_cfg(wcfg())
        .run_fresh(work)
        .unwrap();
    let modern_msgs = modern_report.coord.rounds[0].coord_msgs;
    assert!(
        legacy_msgs > modern_msgs,
        "legacy drain must exchange more coordinator messages ({legacy_msgs} vs {modern_msgs})"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn master_branch_config_smoke() {
    // Original 2PC + BTree tables + lambda wrappers + kernel-call FS mode:
    // the paper's "master branch". Collective-only workload (no §III-E
    // pattern), so original 2PC is safe.
    let mut config = ManaConfig::master_branch();
    config.ckpt_dir = ckpt_dir("master_smoke");
    assert_eq!(config.vtable, VtBackend::BTree);
    assert_eq!(config.callback_style, CallbackStyle::Lambda);
    assert_eq!(config.fs_mode, FsMode::KernelCall);
    let dir = config.ckpt_dir.clone();
    let report = ManaRuntime::new(3, config)
        .with_world_cfg(wcfg())
        .run_fresh(|m| {
            let w = m.comm_world();
            let mut acc = 0u64;
            for i in 0..4u64 {
                if i == 1 && m.rank() == 0 && m.round() == 0 {
                    m.request_checkpoint()?;
                }
                acc += m.allreduce_t(w, ReduceOp::Sum, &[i])?[0];
            }
            Ok(acc)
        })
        .unwrap();
    assert!(report.all_finished());
    assert!(
        report.rank_stats[0].tpc_barriers > 0,
        "original 2PC barriers ran"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repeated_checkpoint_rounds() {
    // Fig. 3 style: several checkpoint/resume rounds in one run.
    let n = 3;
    let config = cfg("repeat_rounds");
    let dir = config.ckpt_dir.clone();
    let rt = ManaRuntime::new(n, config).with_world_cfg(wcfg());
    let report = rt
        .run_fresh(|m| {
            let w = m.comm_world();
            for step in 0..9u64 {
                if m.rank() == 0 && step % 3 == 0 && m.round() == step / 3 {
                    m.request_checkpoint()?;
                }
                m.allreduce_t(w, ReduceOp::Sum, &[step])?;
            }
            Ok(m.round())
        })
        .unwrap();
    assert_eq!(report.coord.rounds.len(), 3);
    // Image sizes recorded per round.
    for r in &report.coord.rounds {
        assert!(r.total_image_bytes > 0);
    }
    assert!(report.values().iter().all(|&r| r == 3));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn round1_write_failure_aborts_and_restart_uses_round0() {
    // The tentpole robustness scenario: round 0 commits and the job
    // exits; after restart, rank 1's image write fails during round 1
    // (seeded storage fault). The coordinator must abort round 1 — every
    // rank resumes via AbortRound, no hang, and the job finishes — and
    // gen_0 must survive untouched so a later restart still works.
    let n = 3;
    let total = 8u64;
    let work = |m: &mut mana_core::Mana<'_>| -> mana_core::Result<u64> {
        let w = m.comm_world();
        let mut step = m
            .upper()
            .read_value::<u64>("step")
            .transpose()?
            .unwrap_or(0);
        let mut acc = m.upper().read_value::<u64>("acc").transpose()?.unwrap_or(0);
        while step < total {
            if m.rank() == 0 && ((step == 2 && m.round() == 0) || (step == 5 && m.round() == 1)) {
                m.request_checkpoint()?;
            }
            let s = m.allreduce_t(w, ReduceOp::Sum, &[step * 10 + m.rank() as u64])?;
            acc += s[0];
            step += 1;
            m.upper_mut().write_value("step", &step);
            m.upper_mut().write_value("acc", &acc);
            m.step_commit()?;
        }
        Ok(acc)
    };

    // Reference: fault-free resume-mode run (it checkpoints too; resume
    // is transparent, so values are what a native run computes).
    let reference = ManaRuntime::new(n, cfg("r1fail_ref"))
        .with_world_cfg(wcfg())
        .run_fresh(work)
        .unwrap()
        .values();

    // Pass 1: checkpoint round 0 at the step-3 boundary, exit. gen_0 is
    // the committed baseline everything after must not lose.
    let mut config = cfg("r1fail");
    config.exit_after_ckpt = true;
    let dir = config.ckpt_dir.clone();
    let pass1 = ManaRuntime::new(n, config.clone())
        .with_world_cfg(wcfg())
        .run_fresh(work)
        .unwrap();
    assert!(pass1.all_checkpointed(), "{:?}", pass1.outcomes);
    assert_eq!(pass1.coord.rounds.len(), 1);
    assert_eq!(pass1.coord.rounds[0].round, 0);

    // Pass 2: restart from gen_0 with a dead disk on rank 1 armed for
    // round 1. The round must abort cleanly and the job run to the end.
    let mut spec = mpisim::FaultSpec::quiet();
    spec.storage = Some(mpisim::StorageFaultSpec {
        rank: 1,
        round: 1,
        kind: mpisim::StorageFaultKind::WriteError,
    });
    config.fault = Some(std::sync::Arc::new(mpisim::FaultPlan::new(0xF417, spec)));
    let pass2 = ManaRuntime::new(n, config)
        .with_world_cfg(wcfg())
        .run_restart(work)
        .unwrap();
    assert_eq!(pass2.restored_round, Some(0));
    assert!(pass2.all_finished(), "{:?}", pass2.outcomes);
    assert!(pass2.coord.rounds.is_empty(), "round 1 must not commit");
    assert_eq!(pass2.coord.aborted_rounds.len(), 1);
    assert_eq!(pass2.coord.aborted_rounds[0].round, 1);
    assert_eq!(pass2.coord.aborted_rounds[0].failures[0].0, 1);
    for (r, s) in pass2.rank_stats.iter().enumerate() {
        assert_eq!(s.ckpt_aborts, 1, "rank {r} must see exactly one abort");
    }
    assert_eq!(pass2.values(), reference);
    // On disk: round 0 committed and intact, round 1 scrapped.
    let sel = splitproc::store::select_generation(&dir, Some(n)).unwrap();
    assert_eq!(sel.round, 0, "round 1's failure must not cost round 0");
    assert!(sel.rejected.is_empty(), "no partial gen_1 left behind");

    // Pass 3: restart again, fault-free, from the surviving round-0
    // generation, and finish with native-identical results.
    let pass3 = ManaRuntime::new(
        n,
        ManaConfig {
            ckpt_dir: dir.clone(),
            ..ManaConfig::default()
        },
    )
    .with_world_cfg(wcfg())
    .run_restart(work)
    .unwrap();
    assert_eq!(pass3.restored_round, Some(0));
    assert!(pass3.all_finished());
    assert_eq!(pass3.values(), reference);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restart_falls_back_past_corrupt_newest_generation() {
    // A bit flip lands in the newest committed generation after the job
    // exits; restart must reject it by manifest CRC and fall back to the
    // older committed generation.
    let n = 2;
    let total = 6u64;
    let work = |m: &mut mana_core::Mana<'_>| -> mana_core::Result<u64> {
        let w = m.comm_world();
        let mut step = m
            .upper()
            .read_value::<u64>("step")
            .transpose()?
            .unwrap_or(0);
        let mut acc = m.upper().read_value::<u64>("acc").transpose()?.unwrap_or(0);
        while step < total {
            if m.rank() == 0 && ((step == 1 && m.round() == 0) || (step == 3 && m.round() == 1)) {
                m.request_checkpoint()?;
            }
            let s = m.allreduce_t(w, ReduceOp::Sum, &[step + m.rank() as u64])?;
            acc += s[0];
            step += 1;
            m.upper_mut().write_value("step", &step);
            m.upper_mut().write_value("acc", &acc);
            m.step_commit()?;
        }
        Ok(acc)
    };
    let reference = ManaRuntime::new(n, cfg("fallback_ref"))
        .with_world_cfg(wcfg())
        .run_fresh(work)
        .unwrap()
        .values();

    let mut config = cfg("fallback");
    config.exit_after_ckpt = true;
    let dir = config.ckpt_dir.clone();
    // Two checkpoint-and-exit legs commit gen_0 then gen_1 (the restarted
    // coordinator numbers its round after the restored generation).
    let pass1a = ManaRuntime::new(n, config.clone())
        .with_world_cfg(wcfg())
        .run_fresh(work)
        .unwrap();
    assert!(pass1a.all_checkpointed(), "{:?}", pass1a.outcomes);
    assert_eq!(pass1a.coord.rounds[0].round, 0);
    let pass1b = ManaRuntime::new(n, config)
        .with_world_cfg(wcfg())
        .run_restart(work)
        .unwrap();
    assert!(pass1b.all_checkpointed(), "{:?}", pass1b.outcomes);
    assert_eq!(pass1b.restored_round, Some(0));
    assert_eq!(pass1b.coord.rounds[0].round, 1);

    // Silent post-exit corruption of rank 0's image in gen_1. In flat
    // mode the `.mana` image itself is hit; in chunked mode the `.cref`
    // recipe is (its trailing CRC catches the flip) — either way the
    // damage is confined to gen_1, so gen_0 must still restore.
    let gen1 = splitproc::store::generation_dir(&dir, 1);
    let flat = splitproc::CkptImage::path_for(&gen1, 0);
    let victim = if flat.is_file() {
        flat
    } else {
        splitproc::store::recipe_path_for(&gen1, 0)
    };
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&victim, &bytes).unwrap();

    let pass2 = ManaRuntime::new(
        n,
        ManaConfig {
            ckpt_dir: dir.clone(),
            ..ManaConfig::default()
        },
    )
    .with_world_cfg(wcfg())
    .run_restart(work)
    .unwrap();
    assert_eq!(
        pass2.restored_round,
        Some(0),
        "must fall back past corrupt gen_1"
    );
    assert!(pass2.all_finished());
    assert_eq!(pass2.values(), reference);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn alloc_mem_survives_checkpoint() {
    let n = 2;
    let mut config = cfg("alloc_mem");
    config.exit_after_ckpt = true;
    let dir = config.ckpt_dir.clone();
    let work = |m: &mut mana_core::Mana<'_>| -> mana_core::Result<u8> {
        let phase = m
            .upper()
            .read_value::<u64>("phase")
            .transpose()?
            .unwrap_or(0);
        if phase == 0 {
            // MPI_Alloc_mem → checkpointable upper-half memory (§III item 2).
            let h = m.alloc_mem(16);
            m.mem_mut(h)[3] = 0xAB;
            m.upper_mut().write_value("h", &h);
            m.upper_mut().write_value("phase", &1u64);
            if m.rank() == 0 {
                m.request_checkpoint()?;
            }
            m.step_commit()?;
        }
        let h = m.upper().read_value::<u64>("h").transpose()?.unwrap();
        let v = m.mem(h).unwrap()[3];
        assert!(m.free_mem(h));
        Ok(v)
    };
    ManaRuntime::new(n, config.clone())
        .with_world_cfg(wcfg())
        .run_fresh(work)
        .unwrap();
    let pass2 = ManaRuntime::new(n, config)
        .with_world_cfg(wcfg())
        .run_restart(work)
        .unwrap();
    assert_eq!(pass2.values(), vec![0xAB, 0xAB]);
    std::fs::remove_dir_all(&dir).ok();
}
