//! Rank-count scaling under the cooperative engine: worlds far past the
//! thread-per-rank ceiling must complete a full checkpoint-and-exit plus
//! restart round. The always-on test runs 256 ranks; the 4096-rank
//! acceptance round is `#[ignore]`d for routine runs (`--ignored` to
//! execute; the `experiments scale` bench sweeps the same shape).

use mana_core::{DrainMode, ManaConfig, ManaRuntime};
use mpisim::{CoopCfg, EngineKind, SrcSel, TagSel, WorldCfg};
use std::path::PathBuf;
use std::time::Duration;

fn ckpt_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mana2_scale_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn scale_cfg(name: &str) -> ManaConfig {
    ManaConfig {
        // Coordinator drain is O(n) in coordination traffic; Alltoall's
        // per-pair counts matrix is the wrong tool at thousands of ranks.
        drain: DrainMode::Coordinator,
        exit_after_ckpt: true,
        ckpt_dir: ckpt_dir(name),
        ..ManaConfig::default()
    }
}

fn coop_wcfg() -> WorldCfg {
    WorldCfg {
        engine: EngineKind::Coop(CoopCfg {
            workers: 0, // auto: one per available core
            sched_seed: 0x5CA1_E000,
        }),
        watchdog: Some(Duration::from_secs(300)),
        ..WorldCfg::default()
    }
}

/// Ring halo exchange with upper-half step state: the minimal workload
/// that still pushes p2p traffic, drain, and restart-resume through a
/// checkpoint round. Returns the accumulated received values.
fn ring_workload(m: &mut mana_core::Mana<'_>, steps: u64) -> mana_core::Result<u64> {
    let w = m.comm_world();
    let n = m.world_size();
    let right = (m.rank() + 1) % n;
    let left = (m.rank() + n - 1) % n;
    let mut step = m
        .upper()
        .read_value::<u64>("step")
        .transpose()?
        .unwrap_or(0);
    let mut acc = m.upper().read_value::<u64>("acc").transpose()?.unwrap_or(0);
    while step < steps {
        if step == 2 && m.round() == 0 && m.rank() == 0 {
            m.request_checkpoint()?;
        }
        m.send_t(w, right, 1, &[m.rank() as u64 + step])?;
        let (_, got) = m.recv_t::<u64>(w, SrcSel::Rank(left), TagSel::Tag(1))?;
        acc += got[0];
        step += 1;
        m.upper_mut().write_value("step", &step);
        m.upper_mut().write_value("acc", &acc);
        m.step_commit()?;
    }
    Ok(acc)
}

fn expected(n: usize, steps: u64) -> Vec<u64> {
    (0..n)
        .map(|r| {
            let left = ((r + n - 1) % n) as u64;
            steps * left + steps * (steps - 1) / 2
        })
        .collect()
}

fn run_round(name: &str, n: usize, steps: u64) {
    let config = scale_cfg(name);
    let dir = config.ckpt_dir.clone();
    let pass1 = ManaRuntime::new(n, config.clone())
        .with_world_cfg(coop_wcfg())
        .run_fresh(move |m| ring_workload(m, steps))
        .unwrap();
    assert!(pass1.all_checkpointed(), "every rank checkpoints and exits");
    assert_eq!(pass1.coord.rounds.len(), 1, "one committed round");
    let pass2 = ManaRuntime::new(n, config)
        .with_world_cfg(coop_wcfg())
        .run_restart(move |m| ring_workload(m, steps))
        .unwrap();
    assert!(pass2.all_finished(), "restart leg runs to completion");
    assert_eq!(pass2.restored_round, Some(0));
    assert_eq!(pass2.values(), expected(n, steps));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn coop_checkpoint_restart_round_256_ranks() {
    run_round("r256", 256, 4);
}

#[test]
#[ignore = "4096-rank acceptance round: minutes of wall clock; run with --ignored"]
fn coop_checkpoint_restart_round_4096_ranks() {
    run_round("r4096", 4096, 3);
}
