//! Stress and invariant tests: randomized traffic across a checkpoint
//! (drain conservation), and the §III-A request-table growth regression.

use mana_core::{ManaConfig, ManaRuntime};
use mpisim::{ReduceOp, SrcSel, TagSel, WorldCfg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn rt(name: &str, n: usize) -> ManaRuntime {
    ManaRuntime::new(
        n,
        ManaConfig {
            ckpt_dir: std::env::temp_dir()
                .join(format!("mana2_stress_{name}_{}", std::process::id())),
            ..ManaConfig::default()
        },
    )
    .with_world_cfg(WorldCfg {
        watchdog: Some(Duration::from_secs(60)),
        ..WorldCfg::default()
    })
}

#[test]
fn randomized_traffic_conserved_across_checkpoint() {
    // Every rank sends a deterministic-random plan of messages, a
    // checkpoint fires while much of it is in flight, and every byte must
    // still arrive exactly once with content intact.
    let n = 4;
    for seed in [1u64, 7, 42] {
        let report = rt(&format!("conserve{seed}"), n)
            .run_fresh(move |m| {
                let w = m.comm_world();
                let me = m.rank();
                let mut rng = StdRng::seed_from_u64(seed);
                let plan: Vec<Vec<u64>> = (0..n)
                    .map(|_| (0..n).map(|_| rng.gen_range(0..5u64)).collect())
                    .collect();
                // Phase 1: fire all sends.
                for (dst, &planned) in plan[me].iter().enumerate() {
                    if dst == me {
                        continue;
                    }
                    for k in 0..planned {
                        let body = vec![(me * 13 + dst * 7 + k as usize) as u8; 16];
                        m.send(w, dst, k as i32, &body)?;
                    }
                }
                // Checkpoint while messages are outstanding.
                if me == 0 && m.round() == 0 {
                    m.request_checkpoint()?;
                }
                m.barrier(w)?;
                // Phase 2: receive everything, verifying content.
                let mut got = 0u64;
                for (src, row) in plan.iter().enumerate() {
                    if src == me {
                        continue;
                    }
                    for k in 0..row[me] {
                        let (st, data) = m.recv(w, SrcSel::Rank(src), TagSel::Tag(k as i32))?;
                        assert_eq!(st.source, src);
                        assert_eq!(data, vec![(src * 13 + me * 7 + k as usize) as u8; 16]);
                        got += 1;
                    }
                }
                m.barrier(w)?;
                assert_eq!(m.live_requests(), 0, "no leaked requests");
                Ok(got)
            })
            .unwrap();
        assert_eq!(report.coord.rounds.len(), 1, "seed {seed}");
        let vals = report.values();
        let total: u64 = vals.iter().sum();
        // Recompute the plan to know the expected total.
        let mut rng = StdRng::seed_from_u64(seed);
        let plan: Vec<Vec<u64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen_range(0..5u64)).collect())
            .collect();
        let expected: u64 = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .filter(|(i, j)| i != j)
            .map(|(i, j)| plan[i][j])
            .sum();
        assert_eq!(total, expected, "seed {seed}: every message exactly once");
    }
}

#[test]
fn request_table_stays_bounded() {
    // §III-A: without aggressive retirement the virtual-request table
    // grows without bound. Issue thousands of p2p + non-blocking
    // collective ops and assert the live count stays flat.
    let n = 3;
    let report = rt("bounded", n)
        .run_fresh(|m| {
            let w = m.comm_world();
            let right = (m.rank() + 1) % m.world_size();
            let left = (m.rank() + m.world_size() - 1) % m.world_size();
            let mut max_live = 0usize;
            for i in 0..500u64 {
                let r = m.irecv(w, SrcSel::Rank(left), TagSel::Tag(1))?;
                m.send_t(w, right, 1, &[i])?;
                let mut r = r;
                m.wait(&mut r)?;
                if i % 50 == 0 {
                    let mut req = m.iallreduce(
                        w,
                        mpisim::Datatype::U64,
                        ReduceOp::Sum,
                        &mpisim::encode_slice(&[i]),
                    )?;
                    m.wait(&mut req)?;
                }
                max_live = max_live.max(m.live_requests());
            }
            assert_eq!(m.live_requests(), 0, "all requests retired");
            assert!(
                max_live <= 4,
                "table must stay flat under churn, peaked at {max_live}"
            );
            assert_eq!(m.live_collops(), 0, "collective ops pruned");
            Ok(m.stats().wrapper_calls)
        })
        .unwrap();
    assert!(report.values().iter().all(|&c| c > 1500));
}

#[test]
fn many_rounds_many_workers() {
    // Heavier composition: 6 ranks, sub-communicators, five checkpoint
    // rounds interleaved with mixed traffic.
    let n = 6;
    let report = rt("many", n)
        .run_fresh(|m| {
            let w = m.comm_world();
            let sub = m.comm_split(w, (m.rank() % 2) as i32, 0)?.unwrap();
            let mut acc = 0u64;
            for step in 0..15u64 {
                if m.rank() == 0 && step % 3 == 0 && m.round() == step / 3 {
                    m.request_checkpoint()?;
                }
                let right = (m.rank() + 1) % n;
                let left = (m.rank() + n - 1) % n;
                m.send_t(w, right, 2, &[step])?;
                let (_, v) = m.recv_t::<u64>(w, SrcSel::Rank(left), TagSel::Tag(2))?;
                acc += m.allreduce_t(sub, ReduceOp::Sum, &v)?[0];
            }
            Ok(acc)
        })
        .unwrap();
    assert_eq!(report.coord.rounds.len(), 5);
    let vals = report.values();
    // Sub-communicators are even/odd: two distinct values, consistent
    // within each parity class.
    assert_eq!(vals[0], vals[2]);
    assert_eq!(vals[1], vals[3]);
}
