//! Tests of the tools-interface deadlock detector (paper conclusion:
//! "the tools interface also represents an opportunity to provide a
//! deadlock detector").

use mana_core::{DrainMode, ManaConfig, ManaRuntime, RuntimeError, TpcMode};
use mpisim::{ReduceOp, SrcSel, TagSel};
use std::time::Duration;

fn cfg(name: &str, tpc: TpcMode) -> ManaConfig {
    ManaConfig {
        tpc,
        deadlock_timeout: Some(Duration::from_millis(400)),
        ckpt_dir: std::env::temp_dir().join(format!("mana2_dd_{name}_{}", std::process::id())),
        ..ManaConfig::default()
    }
}

#[test]
fn detector_names_blocked_ranks_in_iii_e_deadlock() {
    // The §III-E pattern under Original 2PC deadlocks; with the detector
    // enabled (and NO watchdog), the run fails with a structured report
    // instead of hanging. The drain is pinned: the deadlock comes from the
    // alltoall strategy's pre-collective barrier, which the toposort drain
    // (e.g. via a MANA2_DRAIN override) removes by design.
    let mut config = cfg("iiie", TpcMode::Original);
    config.drain = DrainMode::Alltoall;
    let res = ManaRuntime::new(2, config).run_fresh(|m| {
        let w = m.comm_world();
        if m.rank() == 0 {
            let mut d = vec![1u64];
            m.bcast_t(w, 0, &mut d)?; // Original 2PC: blocks in the barrier
            m.send_t(w, 1, 1, &[2u64])?;
        } else {
            let _ = m.recv_t::<u64>(w, SrcSel::Rank(0), TagSel::Tag(1))?;
            let mut d: Vec<u64> = vec![];
            m.bcast_t(w, 0, &mut d)?;
        }
        Ok(())
    });
    match res {
        Err(RuntimeError::Deadlock(report)) => {
            assert!(report.contains("rank 0"), "{report}");
            assert!(report.contains("rank 1"), "{report}");
            // Rank 1 is in a real lower-half receive; rank 0 parked in the
            // 2PC barrier poll loop.
            assert!(
                report.contains("blocked receiving") || report.contains("parked"),
                "{report}"
            );
        }
        other => panic!("expected deadlock report, got {other:?}"),
    }
}

#[test]
fn detector_quiet_on_healthy_run() {
    // The same detector must not fire on a healthy collective-heavy run
    // (no false positives from ordinary parking).
    let report = ManaRuntime::new(3, cfg("healthy", TpcMode::Hybrid))
        .run_fresh(|m| {
            let w = m.comm_world();
            let mut acc = 0u64;
            for i in 0..20u64 {
                acc += m.allreduce_t(w, ReduceOp::Sum, &[i])?[0];
            }
            Ok(acc)
        })
        .unwrap();
    assert!(report.all_finished());
}

#[test]
fn detector_quiet_during_checkpoints() {
    // Checkpoint quiesce parks every rank briefly — the detector must not
    // misread that as a deadlock (coordinator-parked ranks show as
    // running, breaking the all-blocked condition).
    let report = ManaRuntime::new(3, cfg("ckpt", TpcMode::Hybrid))
        .run_fresh(|m| {
            let w = m.comm_world();
            for i in 0..6u64 {
                if i == 2 && m.rank() == 0 && m.round() == 0 {
                    m.request_checkpoint()?;
                }
                m.allreduce_t(w, ReduceOp::Sum, &[i])?;
            }
            Ok(())
        })
        .unwrap();
    assert_eq!(report.coord.rounds.len(), 1);
}
