//! Property-based tests for MANA's pure components: virtual tables,
//! request metadata, drain buffers, and serialization invariants.

use mana_core::{
    Binding, CollOp, DrainBuffer, DrainedMsg, RequestManager, StoredCompletion, VComm, VReqEntry,
    VReqKind, VirtualTable, VtBackend,
};
use mpisim::TagSel;
use proptest::prelude::*;
use splitproc::{Decode, Encode};

#[derive(Debug, Clone)]
enum TableOp {
    Insert(u64),
    Remove(usize),
    Lookup(usize),
}

fn table_ops() -> impl Strategy<Value = Vec<TableOp>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u64>().prop_map(TableOp::Insert),
            any::<usize>().prop_map(TableOp::Remove),
            any::<usize>().prop_map(TableOp::Lookup),
        ],
        0..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn vtable_backends_are_observably_identical(ops in table_ops()) {
        // Differential testing: Linear, BTree, and FxHash must agree on
        // every observable after every operation (§III-I.1 says they only
        // differ in speed).
        let mut tables: Vec<VirtualTable<u64>> =
            [VtBackend::Linear, VtBackend::BTree, VtBackend::FxHash]
                .into_iter()
                .map(|b| VirtualTable::new(b, 2))
                .collect();
        let mut ids: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                TableOp::Insert(v) => {
                    let new: Vec<u64> = tables.iter_mut().map(|t| t.insert(v)).collect();
                    prop_assert!(new.windows(2).all(|w| w[0] == w[1]));
                    ids.push(new[0]);
                }
                TableOp::Remove(i) if !ids.is_empty() => {
                    let vid = ids[i % ids.len()];
                    let removed: Vec<Option<u64>> =
                        tables.iter_mut().map(|t| t.remove(vid)).collect();
                    prop_assert!(removed.windows(2).all(|w| w[0] == w[1]));
                }
                TableOp::Lookup(i) if !ids.is_empty() => {
                    let vid = ids[i % ids.len()];
                    let found: Vec<Option<u64>> =
                        tables.iter_mut().map(|t| t.lookup(vid).copied()).collect();
                    prop_assert!(found.windows(2).all(|w| w[0] == w[1]));
                }
                _ => {}
            }
        }
        let lens: Vec<usize> = tables.iter().map(|t| t.len()).collect();
        prop_assert!(lens.windows(2).all(|w| w[0] == w[1]));
        let vids: Vec<Vec<u64>> = tables.iter().map(|t| t.sorted_vids()).collect();
        prop_assert_eq!(&vids[0], &vids[1]);
        prop_assert_eq!(&vids[1], &vids[2]);
    }

    #[test]
    fn drain_buffer_preserves_per_source_fifo(
        msgs in proptest::collection::vec((0usize..4, 0i32..8, any::<u8>()), 0..40)
    ) {
        let mut buf = DrainBuffer::new();
        for (src, tag, payload) in &msgs {
            buf.push(DrainedMsg {
                vcomm: VComm(1),
                src_world: *src,
                tag: *tag,
                payload: vec![*payload],
            });
        }
        // Drain everything from source 2 with ANY tag: must come out in
        // push order (non-overtaking per source).
        let expected: Vec<u8> = msgs.iter().filter(|(s, _, _)| *s == 2).map(|(_, _, p)| *p).collect();
        let mut got = Vec::new();
        while let Some(m) = buf.take_match(VComm(1), Some(2), TagSel::Any) {
            got.push(m.payload[0]);
        }
        prop_assert_eq!(got, expected);
        // Everything left is from other sources.
        prop_assert_eq!(buf.len(), msgs.iter().filter(|(s, _, _)| *s != 2).count());
    }

    #[test]
    fn drain_buffer_codec_roundtrip(
        msgs in proptest::collection::vec(
            (any::<u64>(), 0usize..64, 0i32..1000,
             proptest::collection::vec(any::<u8>(), 0..32)), 0..16)
    ) {
        let mut buf = DrainBuffer::new();
        for (vc, src, tag, payload) in msgs {
            buf.push(DrainedMsg { vcomm: VComm(vc), src_world: src, tag, payload });
        }
        let back = DrainBuffer::from_bytes(&buf.to_bytes()).unwrap();
        prop_assert_eq!(back, buf);
    }

    #[test]
    fn vreq_entry_codec_roundtrip(
        dst in 0usize..128,
        tag in 0i32..1000,
        len in 0usize..4096,
        src in proptest::option::of(0usize..128),
        payload in proptest::collection::vec(any::<u8>(), 0..32),
        variant in 0u8..6,
    ) {
        let kind = match variant % 3 {
            0 => VReqKind::SendP2p { dst_world: dst, tag, len },
            1 => VReqKind::RecvP2p {
                vcomm: VComm(7),
                src_world: src,
                tag: if variant >= 3 { TagSel::Any } else { TagSel::Tag(tag) },
            },
            _ => VReqKind::Coll { op_id: len as u64 },
        };
        let binding = match variant % 3 {
            0 => Binding::Real(dst as u64),
            1 => Binding::Unbound,
            _ => Binding::NullPending(Some(StoredCompletion {
                src_world: dst,
                tag,
                payload,
            })),
        };
        let e = VReqEntry { kind, binding };
        prop_assert_eq!(VReqEntry::from_bytes(&e.to_bytes()).unwrap(), e);
    }

    #[test]
    fn request_meta_restart_transform_is_idempotent(
        n_send in 0usize..8,
        n_recv in 0usize..8,
        n_null in 0usize..8,
    ) {
        let mut m = RequestManager::new(VtBackend::FxHash);
        for i in 0..n_send {
            m.create(VReqKind::SendP2p { dst_world: i, tag: 0, len: 8 }, Binding::Real(i as u64));
        }
        for i in 0..n_recv {
            m.create(
                VReqKind::RecvP2p { vcomm: VComm(1), src_world: Some(i), tag: TagSel::Tag(1) },
                Binding::Real(100 + i as u64),
            );
        }
        for _ in 0..n_null {
            m.create(
                VReqKind::RecvP2p { vcomm: VComm(1), src_world: None, tag: TagSel::Any },
                Binding::NullPending(None),
            );
        }
        let meta1 = m.to_meta();
        // Rebuild and re-serialize: the transform must be a fixed point
        // (Real bindings are gone after the first transform).
        let m2 = RequestManager::from_meta(&meta1, VtBackend::BTree);
        let meta2 = m2.to_meta();
        prop_assert_eq!(meta1, meta2);
        prop_assert_eq!(m2.live(), n_send + n_recv + n_null);
        // No Real bindings survive serialization.
        for (_, e) in &m2.to_meta().entries {
            prop_assert!(!matches!(e.binding, Binding::Real(_)));
        }
    }

    #[test]
    fn collop_codec_roundtrip_drops_real_handles(
        phase in any::<u32>(),
        sent in any::<bool>(),
        acc in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut op = CollOp::barrier(3, VComm(1), 9);
        op.phase = phase;
        op.sent_phase = sent;
        op.acc = acc;
        op.slots.push(mana_core::IRecvSlot {
            src_local: 2,
            tag: 123,
            real: Some(0xDEAD), // must NOT survive (lower half dies)
            data: None,
        });
        let back = CollOp::from_bytes(&op.to_bytes()).unwrap();
        prop_assert_eq!(back.phase, op.phase);
        prop_assert_eq!(back.sent_phase, op.sent_phase);
        prop_assert_eq!(&back.acc, &op.acc);
        prop_assert_eq!(back.slots[0].real, None, "real handles must not serialize");
        prop_assert_eq!(back.slots[0].src_local, 2);
    }
}

// ---- randomized state-machine resumability ------------------------------

mod emu_resume {
    use mana_core::{CollOp, EmuIo, IRecvSlot, VCOMM_WORLD};
    use mpisim::{encode_slice, Datatype, ReduceOp};
    use proptest::prelude::*;
    use splitproc::{Decode, Encode};
    use std::cell::RefCell;
    use std::collections::VecDeque;
    use std::rc::Rc;

    /// In-memory fabric standing in for the network + drain buffer: bytes
    /// persist across "restarts" exactly like drained messages do.
    #[derive(Default)]
    struct MockNet {
        boxes: RefCell<Boxes>,
    }

    /// (src, dst, tag) -> queued payloads.
    type Boxes = std::collections::HashMap<(usize, usize, i32), VecDeque<Vec<u8>>>;

    struct MockIo {
        me: usize,
        n: usize,
        net: Rc<MockNet>,
    }

    impl EmuIo for MockIo {
        fn me(&self) -> usize {
            self.me
        }
        fn size(&self) -> usize {
            self.n
        }
        fn send(&mut self, dst: usize, tag: i32, data: &[u8]) -> mana_core::Result<()> {
            self.net
                .boxes
                .borrow_mut()
                .entry((self.me, dst, tag))
                .or_default()
                .push_back(data.to_vec());
            Ok(())
        }
        fn poll_slot(&mut self, slot: &mut IRecvSlot) -> mana_core::Result<bool> {
            if slot.data.is_some() {
                return Ok(true);
            }
            let mut boxes = self.net.boxes.borrow_mut();
            if let Some(q) = boxes.get_mut(&(slot.src_local, self.me, slot.tag)) {
                if let Some(p) = q.pop_front() {
                    slot.data = Some(p);
                    return Ok(true);
                }
            }
            Ok(false)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Drive a world of allreduce state machines with a random
        /// rank-interleaving, serializing and rebuilding every op at random
        /// points ("checkpoints"). The final result must always be the true
        /// sum on every rank — regardless of where the interruptions land.
        #[test]
        fn allreduce_survives_random_interruptions(
            n in 2usize..7,
            schedule in proptest::collection::vec((0usize..7, proptest::bool::weighted(0.3)), 10..120),
        ) {
            let net = Rc::new(MockNet::default());
            let mut ios: Vec<MockIo> = (0..n)
                .map(|me| MockIo { me, n, net: net.clone() })
                .collect();
            let mut ops: Vec<CollOp> = (0..n)
                .map(|me| {
                    CollOp::allreduce(
                        0,
                        VCOMM_WORLD,
                        5,
                        Datatype::I64,
                        ReduceOp::Sum,
                        encode_slice(&[(me as i64 + 1) * 3]),
                    )
                })
                .collect();
            // Random interleaving with random mid-flight serialize cycles.
            for (pick, ckpt) in schedule {
                let r = pick % n;
                let _ = ops[r].advance(&mut ios[r]).unwrap();
                if ckpt {
                    // "Checkpoint-and-restart" this rank's op: codec
                    // round-trip drops real handles, keeps logical state.
                    ops[r] = CollOp::from_bytes(&ops[r].to_bytes()).unwrap();
                }
            }
            // Drive everything to completion.
            for _ in 0..10_000 {
                let mut all = true;
                for r in 0..n {
                    if !ops[r].advance(&mut ios[r]).unwrap() {
                        all = false;
                    }
                }
                if all {
                    break;
                }
            }
            let expect: i64 = (1..=n as i64).map(|v| v * 3).sum();
            for (me, op) in ops.iter().enumerate() {
                prop_assert!(op.done, "rank {me} never completed");
                let got = mpisim::decode_slice::<i64>(&op.out).unwrap();
                prop_assert_eq!(got[0], expect, "rank {} wrong sum", me);
            }
        }

        /// Same property for the barrier: no rank may complete before every
        /// rank has entered, under any interleaving with interruptions.
        #[test]
        fn barrier_correct_under_random_interruptions(
            n in 2usize..7,
            schedule in proptest::collection::vec((0usize..7, proptest::bool::weighted(0.25)), 5..80),
        ) {
            let net = Rc::new(MockNet::default());
            let mut ios: Vec<MockIo> = (0..n)
                .map(|me| MockIo { me, n, net: net.clone() })
                .collect();
            let mut ops: Vec<CollOp> =
                (0..n).map(|_| CollOp::barrier(0, VCOMM_WORLD, 9)).collect();
            // Hold rank n-1 back entirely during the random phase: nobody
            // may finish.
            for (pick, ckpt) in &schedule {
                let r = pick % (n - 1);
                let _ = ops[r].advance(&mut ios[r]).unwrap();
                if *ckpt {
                    ops[r] = CollOp::from_bytes(&ops[r].to_bytes()).unwrap();
                }
            }
            prop_assert!(
                ops[..n - 1].iter().all(|o| !o.done),
                "barrier completed without the last rank"
            );
            for _ in 0..10_000 {
                let mut all = true;
                for r in 0..n {
                    if !ops[r].advance(&mut ios[r]).unwrap() {
                        all = false;
                    }
                }
                if all {
                    break;
                }
            }
            prop_assert!(ops.iter().all(|o| o.done));
        }
    }
}
