//! Minimal `crossbeam`-compatible surface (the `channel` module only),
//! implemented over `std::sync` primitives.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the exact API subset it uses: MPMC channels with cloneable senders
//! *and* receivers, bounded/unbounded constructors, `recv`/`recv_timeout`
//! with disconnect detection.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        // Waiters for "queue non-empty or disconnected".
        recv_cv: Condvar,
        // Waiters for "queue below capacity or disconnected".
        send_cv: Condvar,
    }

    impl<T> Chan<T> {
        fn new(cap: Option<usize>) -> Arc<Self> {
            Arc::new(Chan {
                state: Mutex::new(State {
                    queue: VecDeque::new(),
                    cap,
                    senders: 1,
                    receivers: 1,
                }),
                recv_cv: Condvar::new(),
                send_cv: Condvar::new(),
            })
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message available.
        Timeout,
        /// All senders dropped and the queue is empty.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on receive"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// All senders dropped and the queue is empty.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel empty"),
                TryRecvError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; cloneable (messages go to exactly one receiver).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Chan::new(None);
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    /// Create a bounded channel; `send` blocks while `cap` messages queue.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Chan::new(Some(cap.max(1)));
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Deposit a message, blocking while the channel is at capacity.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match st.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self
                            .chan
                            .send_cv
                            .wait(st)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.chan.recv_cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                self.chan.recv_cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Pop a message, blocking until one arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.chan.send_cv.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .chan
                    .recv_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Pop a message, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.chan.send_cv.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _res) = self
                    .chan
                    .recv_cv
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = g;
            }
        }

        /// Non-blocking pop.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.chan.send_cv.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.receivers -= 1;
            let last = st.receivers == 0;
            drop(st);
            if last {
                self.chan.send_cv.notify_all();
            }
        }
    }
}
