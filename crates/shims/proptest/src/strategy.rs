//! The [`Strategy`] trait and primitive strategies: ranges, tuples,
//! `Just`, `prop_map`, and the `prop_oneof!` union.

use crate::test_runner::TestRng;
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// A generator of test-case values.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply produces a value from a seeded RNG, and reproduction works by
/// replaying the seed.
pub trait Strategy {
    /// The type of value this strategy yields.
    type Value: fmt::Debug;

    /// Produce one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always yields a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                (*self.start() as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Pattern strategies: a `&str` is interpreted as a small regex subset
/// (see [`crate::string::generate`]).
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Box a strategy for use in heterogeneous unions (`prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<V: fmt::Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        (**self).new_value(rng)
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V: fmt::Debug> Union<V> {
    /// Build from boxed arms; must be non-empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let pick = (rng.next_u64() as usize) % self.arms.len();
        self.arms[pick].new_value(rng)
    }
}

/// Length specification for collection strategies (half-open).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    /// Draw a concrete length.
    pub fn pick(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo {
            return self.lo;
        }
        self.lo + (rng.next_u64() as usize) % (self.hi - self.lo)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: r.end().saturating_add(1),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}
