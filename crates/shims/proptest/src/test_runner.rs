//! Seeded case loop: configuration, RNG, and the panic-capturing runner
//! behind the `proptest!` macro.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runner configuration (subset of real proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The inputs did not meet a `prop_assume!` precondition.
    Reject(String),
}

impl TestCaseError {
    /// A property violation.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A discarded case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of one property-case execution.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generator handed to strategies (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed a generator.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Drive `case` until `cfg.cases` successes, panicking with the inputs
/// and a replay seed on the first failure.
///
/// The base seed defaults to a hash of the test name (deterministic runs)
/// and can be overridden with `PROPTEST_SEED=<u64>`.
pub fn run<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng, &mut String) -> TestCaseResult,
{
    let base_seed: u64 = match std::env::var("PROPTEST_SEED") {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {v:?}")),
        Err(_) => fnv1a(name),
    };
    let mut accepted: u32 = 0;
    let mut attempt: u64 = 0;
    let max_attempts = (cfg.cases as u64) * 16 + 64;
    while accepted < cfg.cases {
        attempt += 1;
        if attempt > max_attempts {
            panic!(
                "[{name}] too many rejected cases: {accepted}/{} accepted after {attempt} attempts",
                cfg.cases
            );
        }
        let case_seed = base_seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::from_seed(case_seed);
        let mut inputs = String::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng, &mut inputs)));
        match outcome {
            Ok(Ok(())) => accepted += 1,
            Ok(Err(TestCaseError::Reject(_))) => {}
            Ok(Err(TestCaseError::Fail(msg))) => panic!(
                "[{name}] property failed at case {attempt}: {msg}\n\
                 inputs: {inputs}\n\
                 replay: PROPTEST_SEED={base_seed} cargo test {name}"
            ),
            Err(payload) => panic!(
                "[{name}] case {attempt} panicked: {}\n\
                 inputs: {inputs}\n\
                 replay: PROPTEST_SEED={base_seed} cargo test {name}",
                panic_message(payload.as_ref())
            ),
        }
    }
}
