//! Minimal `proptest`-compatible property-testing harness for offline
//! builds.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the exact API subset its property tests use: the `proptest!` macro,
//! `Strategy` + `prop_map`, `any::<T>()`, range/tuple/collection/string
//! strategies, `prop_oneof!`, and the `prop_assert*` family.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case prints the generated inputs and a
//!   `PROPTEST_SEED=<seed>` environment line that deterministically
//!   replays the exact failing case.
//! * **Deterministic by default.** The base seed is derived from the test
//!   name, so runs are reproducible without any configuration;
//!   `PROPTEST_SEED` overrides it.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

/// `any::<T>()` and the [`Arbitrary`](arbitrary::ArbitraryValue) machinery.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" generator.
    pub trait ArbitraryValue: fmt::Debug + Sized {
        /// Produce one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Strategy producing arbitrary values of `T`.
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The full-range strategy for `T` (mirrors `proptest::arbitrary::any`).
    pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for u128 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl ArbitraryValue for i128 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            u128::arbitrary_value(rng) as i128
        }
    }

    impl ArbitraryValue for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            // Mostly raw bit patterns (hits subnormals and NaNs), with the
            // interesting specials forced in occasionally.
            match rng.next_u64() % 16 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 0.0,
                4 => -0.0,
                _ => f64::from_bits(rng.next_u64()),
            }
        }
    }

    impl ArbitraryValue for f32 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            f64::arbitrary_value(rng) as f32
        }
    }
}

/// Collection strategies (`vec`, `btree_set`, `btree_map`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy};
    use crate::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: `size` lengths of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` strategy; duplicates are retried a bounded number of
    /// times, so the set may come out smaller than the drawn size.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let want = self.size.pick(rng);
            let mut out = BTreeSet::new();
            for _ in 0..want * 4 + 8 {
                if out.len() >= want {
                    break;
                }
                out.insert(self.element.new_value(rng));
            }
            out
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `BTreeMap` strategy; duplicate keys are retried a bounded number of
    /// times, so the map may come out smaller than the drawn size.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let want = self.size.pick(rng);
            let mut out = BTreeMap::new();
            for _ in 0..want * 4 + 8 {
                if out.len() >= want {
                    break;
                }
                out.insert(self.key.new_value(rng), self.value.new_value(rng));
            }
            out
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `true` with a fixed probability.
    pub struct Weighted {
        p: f64,
    }

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.unit_f64() < self.p
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy wrapping another in `Option`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some(inner)` most of the time, `None` for the rest.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

/// String generation from regex-like patterns (`&str` strategies).
pub mod string {
    use crate::test_runner::TestRng;

    enum Atom {
        Any,
        Class(Vec<char>),
        Literal(char),
    }

    /// Generate a string matching a small regex subset: literal chars,
    /// `.`, `[a-z0-9_]`-style classes, and the quantifiers `* + ? {m} {m,n}`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    let mut class = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                            for c in lo..=hi {
                                if let Some(c) = char::from_u32(c) {
                                    class.push(c);
                                }
                            }
                            i += 3;
                        } else {
                            class.push(chars[i]);
                            i += 1;
                        }
                    }
                    i += 1; // closing ']'
                    Atom::Class(class)
                }
                '\\' if i + 1 < chars.len() => {
                    i += 2;
                    Atom::Literal(chars[i - 1])
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Quantifier, if any.
            let (lo, hi) = match chars.get(i) {
                Some('*') => {
                    i += 1;
                    (0usize, 7usize)
                }
                Some('+') => {
                    i += 1;
                    (1, 7)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('{') => {
                    let close = chars[i..].iter().position(|&c| c == '}').unwrap_or(0) + i;
                    let spec: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match spec.split_once(',') {
                        Some((m, n)) => {
                            (m.trim().parse().unwrap_or(0), n.trim().parse().unwrap_or(7))
                        }
                        None => {
                            let m = spec.trim().parse().unwrap_or(1);
                            (m, m)
                        }
                    }
                }
                _ => (1, 1),
            };
            let count = lo + (rng.next_u64() as usize) % (hi - lo + 1);
            for _ in 0..count {
                match &atom {
                    Atom::Any => {
                        // Printable ASCII plus the occasional multibyte char
                        // to keep codecs honest.
                        let c = if rng.next_u64().is_multiple_of(8) {
                            char::from_u32(0x80 + (rng.next_u64() as u32) % 0x2000)
                                .unwrap_or('\u{00e9}')
                        } else {
                            (0x20u8 + (rng.next_u64() as u8) % 0x5f) as char
                        };
                        out.push(c);
                    }
                    Atom::Class(class) if !class.is_empty() => {
                        out.push(class[(rng.next_u64() as usize) % class.len()]);
                    }
                    Atom::Class(_) => {}
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                let __strats = ($(&$strat,)+);
                let ($($arg,)+) = __strats;
                $crate::test_runner::run(&__cfg, stringify!($name), |__rng, __inputs| {
                    $(let $arg = $crate::strategy::Strategy::new_value($arg, __rng);)+
                    {
                        use ::std::fmt::Write as _;
                        $(let _ = ::core::write!(
                            __inputs, concat!(stringify!($arg), " = {:?}; "), &$arg);)+
                    }
                    let __case = || -> $crate::test_runner::TestCaseResult {
                        { $body }
                        ::std::result::Result::Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// Assert inside a property body; failure records the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __l, __r
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($a), stringify!($b), __l, __r, format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), __l
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}\n {}",
            stringify!($a), stringify!($b), __l, format!($($fmt)+)
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
