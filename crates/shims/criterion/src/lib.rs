//! Minimal `criterion`-compatible benchmarking surface for offline
//! builds.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the API subset its benches use: `Criterion`, `benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros. Measurement is
//! a simple wall-clock mean over `sample_size` iterations printed as
//! plain text — no statistics, plots, or comparison baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Hide a value from the optimizer (re-export of `std::hint::black_box`).
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Apply command-line configuration (accepted and ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Default number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 10,
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        run_bench(&format!("{name}"), samples, &mut f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted and ignored (the shim has no warm-up phase to bound).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{id}", self.name), self.sample_size, &mut f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.sample_size;
        run_bench(
            &format!("{}/{id}", self.name),
            samples,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `samples` calls of `f`, accumulating into the report.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // One untimed call to warm caches and lazy state.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.total += start.elapsed();
        self.iters += self.samples as u64;
    }
}

fn run_bench<F>(label: &str, samples: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        eprintln!("  {label}: no iterations recorded");
        return;
    }
    let per_iter = b.total.as_nanos() / b.iters as u128;
    eprintln!("  {label}: {} ns/iter ({} iters)", per_iter, b.iters);
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
