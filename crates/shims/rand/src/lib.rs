//! Minimal `rand`-compatible surface for offline builds.
//!
//! Implements exactly what the workspace uses: `StdRng::seed_from_u64`
//! plus `Rng::{gen_range, gen_bool, next_u64}` over integer and float
//! ranges. The generator is xoshiro256** seeded via splitmix64 — fast,
//! deterministic, and plenty for test-input generation (not crypto).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core random-value API (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64(), &range)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Types uniformly sampleable from a half-open range.
pub trait SampleUniform: Copy {
    /// Map 64 random bits into `range`.
    fn sample(bits: u64, range: &Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(bits: u64, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                (range.start as i128 + (bits as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample(bits: u64, range: &Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let unit = ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}
