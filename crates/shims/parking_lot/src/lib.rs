//! Minimal `parking_lot`-compatible surface implemented over `std::sync`.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the exact API subset it uses: `Mutex` whose `lock()` returns a guard
//! directly (no poison `Result`), and `Condvar::wait_for` taking the
//! guard by `&mut`. Poisoned std locks are transparently recovered, which
//! matches parking_lot's "no poisoning" semantics.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive; `lock()` never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from std poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Non-blocking acquire.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard; the lock is released on drop.
///
/// Holds the std guard in an `Option` so `Condvar::wait_for` can move it
/// out (std's wait API consumes the guard) and put it back, preserving
/// parking_lot's `&mut guard` calling convention.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard moved during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard moved during wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard moved during wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard moved during wait");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
