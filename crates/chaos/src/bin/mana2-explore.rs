//! `mana2-explore` — hunt interleaving bugs in the coop scheduler's
//! schedule space.
//!
//! ```text
//! mana2-explore [--seed N] [--ranks N] [--workers N]
//!               [--workload gromacs|cg] [--drain alltoall|coordinator]
//!               [--budget-secs N] [--max-schedules N] [--max-depth N]
//!               [--keep-going] [--no-minimize] [--json PATH]
//!               [--replay HEX]
//! ```
//!
//! Default mode runs the bounded random-walk search ([`chaos::explore`])
//! and prints the one-line summary plus, for every failure, the minimized
//! choice vector and its `CHAOS_SCHEDULE` repro command. `--replay HEX`
//! skips the search and replays one explicit choice vector (the CLI face
//! of the repro line). Exit status 1 when any schedule failed.

use chaos::explore::{
    decode_choices, drain_name, explore, parse_drain, parse_workload, workload_name, ExploreCfg,
    ExploreTarget,
};
use chaos::Workload;
use mana_core::obs;
use mana_core::DrainMode;
use std::time::Duration;

struct Args {
    seed: u64,
    ranks: usize,
    workers: usize,
    workload: Workload,
    drain: DrainMode,
    cfg: ExploreCfg,
    json: Option<std::path::PathBuf>,
    replay: Option<Vec<u32>>,
    emit_corpus: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: mana2-explore [--seed N] [--ranks N] [--workers N] \
         [--workload gromacs|cg] [--drain alltoall|coordinator] \
         [--budget-secs N] [--max-schedules N] [--max-depth N] \
         [--keep-going] [--no-minimize] [--json PATH] [--replay HEX]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args {
        seed: 0xE5_B007,
        ranks: 4,
        workers: 1,
        workload: Workload::Gromacs,
        drain: DrainMode::Alltoall,
        cfg: ExploreCfg::default(),
        json: None,
        replay: None,
        emit_corpus: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |flag: &str| it.next().unwrap_or_else(|| die(flag, "missing value"));
        match flag.as_str() {
            "--seed" => a.seed = parse(&flag, &val(&flag)),
            "--ranks" => a.ranks = parse(&flag, &val(&flag)),
            "--workers" => a.workers = parse(&flag, &val(&flag)),
            "--workload" => {
                a.workload = parse_workload(&val(&flag)).unwrap_or_else(|e| die(&flag, &e))
            }
            "--drain" => a.drain = parse_drain(&val(&flag)).unwrap_or_else(|e| die(&flag, &e)),
            "--budget-secs" => a.cfg.budget = Duration::from_secs(parse(&flag, &val(&flag))),
            "--max-schedules" => a.cfg.max_schedules = parse(&flag, &val(&flag)),
            "--max-depth" => a.cfg.max_depth = parse(&flag, &val(&flag)),
            "--keep-going" => a.cfg.stop_on_first_failure = false,
            "--no-minimize" => a.cfg.minimize = false,
            "--json" => a.json = Some(val(&flag).into()),
            "--replay" => {
                a.replay = Some(decode_choices(&val(&flag)).unwrap_or_else(|e| die(&flag, &e)))
            }
            "--emit-corpus" => a.emit_corpus = parse(&flag, &val(&flag)),
            "--help" | "-h" => usage(),
            other => die(other, "unknown flag"),
        }
    }
    a
}

fn die(flag: &str, msg: &str) -> ! {
    eprintln!("mana2-explore: {flag}: {msg}");
    usage();
}

fn parse<T: std::str::FromStr>(flag: &str, v: &str) -> T
where
    T::Err: std::fmt::Display,
{
    v.trim()
        .parse()
        .unwrap_or_else(|e| die(flag, &format!("{e}")))
}

fn main() {
    let a = parse_args();
    let target = ExploreTarget::new(a.seed, a.ranks, a.workers, a.workload, a.drain)
        .unwrap_or_else(|e| {
            eprintln!("mana2-explore: {e}");
            std::process::exit(2);
        });

    if let Some(choices) = &a.replay {
        let run = target.run_schedule(choices);
        println!(
            "replay seed={} {}x{} {}/{}: {} decisions, fingerprint {:016x}{}",
            a.seed,
            a.ranks,
            a.workers,
            workload_name(a.workload),
            drain_name(a.drain),
            run.decisions.len(),
            run.fingerprint,
            match &run.divergence {
                Some(d) => format!(
                    " (DIVERGED at decision {}: choice {} vs ready {})",
                    d.index, d.choice, d.ready_len
                ),
                None => String::new(),
            }
        );
        match &run.error {
            Some(e) => {
                eprintln!("FAIL: {e}");
                std::process::exit(1);
            }
            None => println!("ok"),
        }
        return;
    }

    let report = explore(&target, &a.cfg);
    println!("{}", report.summary());
    if a.emit_corpus > 0 {
        // Fixture lines for crates/chaos/tests/fixtures/: prefixes that
        // reached fingerprints no other visited schedule produced.
        for p in report.distinct_prefixes.iter().take(a.emit_corpus) {
            println!(
                "corpus: {}",
                chaos::explore::ScheduleFixture {
                    seed: a.seed,
                    ranks: a.ranks,
                    workers: a.workers,
                    workload: a.workload,
                    drain: a.drain,
                    choices: p.clone(),
                }
                .to_line()
            );
        }
    }
    if let Some(path) = &a.json {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, report.to_json(&target)).unwrap_or_else(|e| {
            eprintln!("mana2-explore: writing {}: {e}", path.display());
            std::process::exit(2);
        });
        println!("json artifact: {}", path.display());
    }
    for f in &report.failures {
        eprintln!("FAIL: {}", f.error);
        eprintln!("  choices: {}", chaos::explore::encode_choices(&f.choices));
        let repro_choices = match &f.minimized {
            Some(m) => {
                eprintln!(
                    "  minimized ({} tests): {}",
                    m.tests,
                    chaos::explore::encode_choices(&m.choices)
                );
                m.choices.clone()
            }
            None => f.choices.clone(),
        };
        eprintln!("  repro: {}", target.repro_command(&repro_choices));
        // Flight-recorder dump of the failing schedule for the CI artifact.
        if let Some(p) = dump_failure_trace(&target, &repro_choices) {
            eprintln!("  trace dump: {}", p.display());
        }
    }
    if !report.failures.is_empty() {
        std::process::exit(1);
    }
}

/// Re-run the failing schedule with an externally-owned sink and dump the
/// flight recorder (JSONL + Chrome trace) for artifact upload.
fn dump_failure_trace(target: &ExploreTarget, choices: &[u32]) -> Option<std::path::PathBuf> {
    let sink = obs::TraceSink::wall(target.ranks, 16 * 1024);
    target.run_schedule_traced(choices, &sink);
    let dir = obs::default_trace_dir();
    let label = obs::unique_label("explore_fail");
    obs::flight_record(&sink, &dir, &label, Some(target.seed))
        .ok()
        .map(|d| d.jsonl)
}
