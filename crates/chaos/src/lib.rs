//! Seeded chaos harness for the MANA-2.0 reproduction.
//!
//! One `u64` seed describes a complete failure scenario: a
//! [`mpisim::FaultPlan`] (message delays, cross-pair reordering, ready
//! stalls, coordinator latency, and an adversarial checkpoint trigger)
//! plus the shape of the run it is applied to (world size, workload,
//! drain mode, exit-and-restart vs resume). The harness runs the workload
//! natively as a reference, runs it again under MANA with the fault plan
//! armed, and demands bit-identical results — the transparency oracle
//! under adversarial scheduling.
//!
//! Every decision inside a plan is a pure function of the seed and the
//! message/rank identity, so a failing seed is a complete reproducer:
//!
//! ```text
//! CHAOS_SEED=<seed> cargo test -p chaos --test chaos_suite seed_replay -- --nocapture
//! ```
//!
//! When a case fails, [`check_case`] shrinks it by disarming one fault
//! feature at a time and keeping each disarm that still fails, producing
//! the minimal [`FaultSpec`] that reproduces the failure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mana_core::obs;
use mana_core::{DrainMode, Mana, ManaConfig, ManaRuntime, ManaStats, RunReport, RuntimeError};
use mpisim::{
    EngineKind, FaultPlan, FaultSpec, StorageFaultKind, StorageFaultSpec, World, WorldCfg,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use workloads::{cg, gromacs, ManaFace, NativeFace};

pub mod explore;

/// splitmix64 — the same keyed hash the fault plan uses, so case
/// derivation is deterministic and seed-sensitive.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Which application kernel a chaos case drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Halo exchange + periodic energy allreduce (p2p-heavy).
    Gromacs,
    /// Conjugate gradient (halo exchange + dot-product allreduces; the
    /// residual is a strong end-to-end corruption detector).
    Cg,
}

/// One fully-described chaos scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosCase {
    /// The seed — drives the fault plan and the derived shape fields.
    pub seed: u64,
    /// World size (derived: 2–4 ranks).
    pub ranks: usize,
    /// Application kernel.
    pub workload: Workload,
    /// Drain algorithm under test.
    pub drain: DrainMode,
    /// `true`: checkpoint-and-exit, then restart from the image and run to
    /// completion. `false`: checkpoint while running (resume mode).
    pub restart: bool,
}

impl ChaosCase {
    /// Derive the seed-dependent shape (ranks, restart-vs-resume) for an
    /// explicitly chosen workload and drain mode. This is what the sweep
    /// matrix uses so every (workload, drain) cell is exercised.
    pub fn derive(seed: u64, workload: Workload, drain: DrainMode) -> Self {
        let h = |salt: u64| splitmix64(seed ^ splitmix64(salt));
        ChaosCase {
            seed,
            ranks: 2 + (h(0xA11C) % 3) as usize,
            workload,
            drain,
            restart: h(0xE517) % 2 == 0,
        }
    }

    /// Derive *everything* from the seed, workload and drain included.
    /// Used by `CHAOS_SEED` replay and the CI fresh sweep.
    pub fn from_seed(seed: u64) -> Self {
        let h = |salt: u64| splitmix64(seed ^ splitmix64(salt));
        let workload = if h(0x3017) % 2 == 0 {
            Workload::Gromacs
        } else {
            Workload::Cg
        };
        let drain = match h(0xD2A1) % 3 {
            0 => DrainMode::Alltoall,
            1 => DrainMode::Coordinator,
            _ => DrainMode::TopoSort,
        };
        ChaosCase::derive(seed, workload, drain)
    }
}

/// Per-rank workload result, unified across kernels so reference and
/// faulted runs compare with one `==`.
#[derive(Debug, Clone, PartialEq)]
pub enum WlValue {
    /// A GROMACS-kernel result.
    G(gromacs::GromacsResult),
    /// A CG-kernel result.
    C(cg::CgResult),
}

/// What a passing case looked like.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseReport {
    /// Checkpoint rounds the coordinator committed.
    pub rounds: usize,
    /// Did the case go through a full exit-and-restart cycle?
    pub restarted: bool,
}

/// A failing case: everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// The scenario that failed.
    pub case: ChaosCase,
    /// What went wrong (stage-prefixed).
    pub error: String,
    /// Flight-recorder dump (JSONL) written when the case failed, if the
    /// dump itself succeeded. Feed it to `mana2-trace` to see the
    /// checkpoint window's phase timeline.
    pub trace_dump: Option<PathBuf>,
}

impl CaseFailure {
    /// The one-line command that replays exactly this scenario.
    pub fn repro(&self) -> String {
        repro_command(self.case.seed)
    }

    /// The trace-dump line for failure reports ("none" when the dump
    /// could not be written).
    pub fn trace_dump_line(&self) -> String {
        match &self.trace_dump {
            Some(p) => p.display().to_string(),
            None => "none".into(),
        }
    }
}

/// The command line that replays a seed through the `seed_replay` test.
pub fn repro_command(seed: u64) -> String {
    format!("CHAOS_SEED={seed} cargo test -p chaos --test chaos_suite seed_replay -- --nocapture")
}

fn wcfg() -> WorldCfg {
    WorldCfg {
        watchdog: Some(Duration::from_secs(90)),
        ..WorldCfg::default()
    }
}

fn gromacs_cfg() -> gromacs::GromacsConfig {
    gromacs::GromacsConfig {
        atoms_per_rank: 96,
        steps: 8,
        compute_per_step: 0,
        energy_interval: 2,
        halo: 8,
        ckpt_at_step: None,
        ckpt_round: 0,
    }
}

fn cg_cfg() -> cg::CgConfig {
    cg::CgConfig {
        local_n: 32,
        max_iters: 40,
        tol: 1e-10,
        ckpt_at_iter: None,
        ckpt_round: 0,
    }
}

fn ckpt_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("mana2_chaos_{}_{}", seed, std::process::id()))
}

/// The fault-free native reference: the answer MANA must reproduce.
/// Runs under the caller's world config so an engine-pinned case checks
/// the reference under the same engine.
fn native_reference(case: &ChaosCase, wc: WorldCfg) -> Result<Vec<WlValue>, String> {
    let w = World::new(case.ranks, wc);
    match case.workload {
        Workload::Gromacs => {
            let cfg = gromacs_cfg();
            w.launch(move |p| {
                let mut f = NativeFace::new(p);
                gromacs::run(&mut f, &cfg).map(WlValue::G)
            })
        }
        Workload::Cg => {
            let cfg = cg_cfg();
            w.launch(move |p| {
                let mut f = NativeFace::new(p);
                cg::run(&mut f, &cfg).map(WlValue::C)
            })
        }
    }
    .map_err(|e| e.to_string())?
    .into_iter()
    .collect::<Result<Vec<_>, _>>()
    .map_err(|e| e.to_string())
}

fn run_workload(
    rt: &ManaRuntime,
    restart: bool,
    case: &ChaosCase,
) -> Result<RunReport<WlValue>, String> {
    let workload = case.workload;
    let g = gromacs_cfg();
    let c = cg_cfg();
    let f = move |m: &mut Mana<'_>| -> mana_core::Result<WlValue> {
        let mut face = ManaFace::new(m);
        match workload {
            Workload::Gromacs => gromacs::run(&mut face, &g)
                .map(WlValue::G)
                .map_err(|e| e.into_mana()),
            Workload::Cg => cg::run(&mut face, &c)
                .map(WlValue::C)
                .map_err(|e| e.into_mana()),
        }
    };
    if restart {
        rt.run_restart(f)
    } else {
        rt.run_fresh(f)
    }
    .map_err(|e| e.to_string())
}

/// Run one case under the plan derived from its seed.
pub fn run_case(case: &ChaosCase) -> Result<CaseReport, CaseFailure> {
    run_case_with_plan(case, FaultPlan::from_seed(case.seed, case.ranks))
}

/// Run one case under an explicit plan (the shrinker substitutes reduced
/// specs here). Tracing is always armed — one sink shared across the
/// faulted and restart legs so a single dump shows the whole story. On
/// failure the flight recorder is dumped and the JSONL path attached to
/// the [`CaseFailure`]; on success a dump is written only when
/// `MANA2_TRACE=1` (CI's artifact hook).
pub fn run_case_with_plan(
    case: &ChaosCase,
    plan: Arc<FaultPlan>,
) -> Result<CaseReport, CaseFailure> {
    let sink = obs::TraceSink::wall(case.ranks, 4096);
    match run_case_traced(case, plan, &sink) {
        Ok(rep) => {
            if std::env::var("MANA2_TRACE").is_ok() {
                if let Some(p) = dump_case_trace(&sink, case.seed, "chaos_pass") {
                    eprintln!("mana2: chaos trace dump: {}", p.display());
                }
            }
            Ok(rep)
        }
        Err(mut f) => {
            f.trace_dump = dump_case_trace(&sink, case.seed, "chaos_fail");
            Err(f)
        }
    }
}

/// Dump the case's flight recorder, returning the JSONL path (best
/// effort — a failed dump must never mask the case result).
fn dump_case_trace(sink: &obs::TraceSink, seed: u64, label: &str) -> Option<PathBuf> {
    let dir = obs::default_trace_dir();
    let lbl = obs::unique_label(label);
    obs::flight_record(sink, &dir, &lbl, Some(seed))
        .ok()
        .map(|d| d.jsonl)
}

/// Project one trace event to its determinism token; `None` drops it
/// from cross-run and cross-engine comparisons.
///
/// Two things legitimately vary between runs of the same seed — under one
/// engine or across engines — and are excluded:
///
/// - *where* the intent lands in a rank's user-traffic stream — a
///   non-trigger rank notices the checkpoint request at its next wrapper
///   call, so the surrounding `net_*` / collective events shift with
///   scheduling (wall timestamps and global sequence numbers shift too);
/// - the drain window (sweep count — possibly zero — and which in-flight
///   messages get captured) and with it the exact image size, which
///   embeds the captured bytes; both depend on delivery timing. The
///   quiesce protocol's own count exchange (`drain_exchange` /
///   `drain_plan` spans and `drain_schedule` events) is excluded for the
///   same reason — and because each [`DrainMode`] emits a different
///   shape, which would break cross-strategy token comparison.
///
/// Everything else inside the checkpoint window — phase spans, store
/// attempts and retries, fault firings, the committed outcome — must be
/// identical, per ring, in program order.
pub fn determinism_token(ev: &obs::TraceEvent) -> Option<String> {
    use obs::EventKind;
    match &ev.kind {
        EventKind::Begin(p) | EventKind::End(p)
            if matches!(p.name(), "drain" | "drain_exchange" | "drain_plan") =>
        {
            None
        }
        EventKind::DrainCapture { .. } => None,
        EventKind::DrainSchedule { .. } => None,
        EventKind::Begin(p) if p.name() == "emu_collective" || p.name() == "tpc_barrier" => None,
        EventKind::End(p) if p.name() == "emu_collective" || p.name() == "tpc_barrier" => None,
        EventKind::Begin(p) => Some(format!("begin:{}", p.name())),
        EventKind::End(p) => Some(format!("end:{}", p.name())),
        EventKind::StoreAttempt { attempt, ok, .. } => {
            Some(format!("store_attempt:{attempt}:{ok}"))
        }
        EventKind::StoreWrite { retries, .. } => Some(format!("store_write:{retries}")),
        EventKind::StoreFault { fault } => Some(format!("store_fault:{}", fault.name())),
        EventKind::FaultFired { fault } => Some(format!("fault_fired:{}", fault.name())),
        _ => None,
    }
}

/// One ring's events → its determinism-token sequence.
pub fn ring_tokens(events: &[obs::TraceEvent]) -> Vec<String> {
    events.iter().filter_map(determinism_token).collect()
}

/// Every actor's token sequence — coordinator first, then ranks in order
/// — so two runs of the same seed diff with one `==`.
pub fn case_token_rings(sink: &obs::TraceSink, ranks: usize) -> Vec<(i32, Vec<String>)> {
    std::iter::once(obs::COORD_ACTOR)
        .chain(0..ranks as i32)
        .map(|actor| (actor, ring_tokens(&sink.ring_events(actor))))
        .collect()
}

/// Run one case with the caller's own trace sink instead of the
/// auto-dumping one [`run_case_with_plan`] creates. The determinism suite
/// uses this to run the same seed twice and diff the recorded event
/// sequences.
pub fn run_case_traced(
    case: &ChaosCase,
    plan: Arc<FaultPlan>,
    sink: &Arc<obs::TraceSink>,
) -> Result<CaseReport, CaseFailure> {
    run_case_engine(case, plan, sink, None).map(|o| o.report)
}

/// What an engine-pinned case run produced beyond the pass/fail summary:
/// the per-rank [`ManaStats`] of each MANA leg, so the dual-engine
/// equivalence suite can compare their schedule-invariant projection
/// across engines.
#[derive(Debug)]
pub struct EngineCaseOutcome {
    /// The usual case summary.
    pub report: CaseReport,
    /// Per-rank stats from the faulted (checkpointing) leg.
    pub ckpt_stats: Vec<ManaStats>,
    /// Per-rank stats from the restart leg, when the case restarted.
    pub restart_stats: Option<Vec<ManaStats>>,
}

impl EngineCaseOutcome {
    /// Per-rank schedule-invariant totals summed across both legs. Only
    /// the sum is engine-invariant in checkpoint-and-exit cases: where the
    /// checkpoint lands in a non-trigger rank's call stream is itself
    /// schedule-dependent, so each leg's share of the program varies.
    pub fn invariant_totals(&self) -> Vec<Vec<(&'static str, u64)>> {
        (0..self.ckpt_stats.len())
            .map(|rank| {
                let mut key = self.ckpt_stats[rank].schedule_invariant().to_vec();
                if let Some(rs) = &self.restart_stats {
                    for (slot, (name, v)) in key.iter_mut().zip(rs[rank].schedule_invariant()) {
                        debug_assert_eq!(slot.0, name);
                        slot.1 += v;
                    }
                }
                key
            })
            .collect()
    }
}

/// [`run_case_traced`] with the execution engine pinned explicitly
/// (`None` keeps the config/`MANA2_ENGINE` default). The native
/// reference, the faulted leg, and the restart leg all run under the
/// pinned engine, and each MANA leg's per-rank stats come back for
/// cross-engine comparison.
pub fn run_case_engine(
    case: &ChaosCase,
    plan: Arc<FaultPlan>,
    sink: &Arc<obs::TraceSink>,
    engine: Option<EngineKind>,
) -> Result<EngineCaseOutcome, CaseFailure> {
    let fail = |stage: &str, e: String| CaseFailure {
        case: case.clone(),
        error: format!("{stage}: {e}"),
        trace_dump: None,
    };
    let wc = match engine {
        Some(e) => WorldCfg {
            engine: e,
            ..wcfg()
        },
        None => wcfg(),
    };
    let expected = native_reference(case, wc.clone()).map_err(|e| fail("native reference", e))?;
    let dir = ckpt_dir(case.seed);
    let _ = std::fs::remove_dir_all(&dir);
    let mcfg = ManaConfig {
        drain: case.drain,
        exit_after_ckpt: case.restart,
        ckpt_dir: dir.clone(),
        fault: Some(plan),
        deadlock_timeout: Some(Duration::from_secs(30)),
        trace: Some(sink.clone()),
        ..ManaConfig::default()
    };
    let rt = ManaRuntime::new(case.ranks, mcfg.clone()).with_world_cfg(wc.clone());
    let pass1 = run_workload(&rt, false, case).map_err(|e| fail("faulted run", e))?;
    let rounds = pass1.coord.rounds.len();
    let ckpt_stats = pass1.rank_stats.clone();
    let mut restart_stats = None;
    let (values, restarted) = if pass1.all_checkpointed() {
        // Exit-after-checkpoint: rebuild every rank from its image and run
        // to completion — still under the same fault plan (the trigger
        // will not re-fire; delays and stalls stay armed).
        let rt2 = ManaRuntime::new(case.ranks, mcfg).with_world_cfg(wc);
        let pass2 = run_workload(&rt2, true, case).map_err(|e| fail("restart run", e))?;
        if !pass2.all_finished() {
            let _ = std::fs::remove_dir_all(&dir);
            return Err(fail(
                "restart run",
                "checkpointed again instead of finishing".into(),
            ));
        }
        restart_stats = Some(pass2.rank_stats.clone());
        (pass2.values(), true)
    } else if pass1.all_finished() {
        (pass1.values(), false)
    } else {
        let _ = std::fs::remove_dir_all(&dir);
        return Err(fail(
            "faulted run",
            "mixed outcomes: some ranks finished, some checkpointed".into(),
        ));
    };
    let _ = std::fs::remove_dir_all(&dir);
    if values != expected {
        return Err(fail(
            "comparison",
            format!("results diverged from native reference\n  native: {expected:?}\n  mana:   {values:?}"),
        ));
    }
    let report = if case.restart && rounds == 0 {
        // The trigger never fired, so the restart leg was never exercised.
        // Not a correctness failure, but worth distinguishing in reports.
        CaseReport {
            rounds,
            restarted: false,
        }
    } else {
        CaseReport { rounds, restarted }
    };
    Ok(EngineCaseOutcome {
        report,
        ckpt_stats,
        restart_stats,
    })
}

/// A shrunk failure: the minimal armed spec that still reproduces it.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// Minimal failing spec.
    pub minimal: FaultSpec,
    /// Feature names that were disarmed without losing the failure.
    pub disabled: Vec<&'static str>,
    /// Error from the minimal reproduction.
    pub error: String,
}

/// One shrinkable fault feature: its name and how to disarm it.
type Disarm = (&'static str, fn(&mut FaultSpec));

/// Shrink a failing case: try disarming each fault feature in turn, keep
/// every disarm under which the case still fails. `original_error` seeds
/// the report in case no disarm succeeds.
pub fn shrink(case: &ChaosCase, original_error: String) -> Shrunk {
    let full = FaultPlan::from_seed(case.seed, case.ranks);
    let mut spec = full.spec().clone();
    let mut disabled = Vec::new();
    let mut error = original_error;
    let features: [Disarm; 4] = [
        ("delay", |s| {
            s.delay_pct = 0;
            s.max_delay_us = 0;
        }),
        ("reorder", |s| {
            s.reorder_pct = 0;
            s.max_reorder_arrivals = 0;
        }),
        ("ready-stall", |s| s.ready_stall = None),
        ("coord-delay", |s| {
            s.coord_delay_pct = 0;
            s.max_coord_delay_us = 0;
        }),
    ];
    for (name, disarm) in features {
        let mut candidate = spec.clone();
        disarm(&mut candidate);
        if candidate == spec {
            continue;
        }
        let plan = Arc::new(FaultPlan::new(case.seed, candidate.clone()));
        if let Err(f) = run_case_with_plan(case, plan) {
            spec = candidate;
            disabled.push(name);
            error = f.error;
        }
    }
    Shrunk {
        minimal: spec,
        disabled,
        error,
    }
}

/// Run a case; on failure, shrink it and return a ready-to-panic report
/// ending in the single-seed repro command.
pub fn check_case(case: &ChaosCase) -> Result<CaseReport, String> {
    run_case(case).map_err(|f| {
        let shrunk = shrink(&f.case, f.error.clone());
        format!(
            "chaos case failed\n  seed: {}\n  case: {:?}\n  error: {}\n  \
             minimal failing spec (disarmed: {:?}): {:?}\n  shrunk error: {}\n  \
             trace dump: {}\n  repro: {}",
            f.case.seed,
            f.case,
            f.error,
            shrunk.disabled,
            shrunk.minimal,
            shrunk.error,
            f.trace_dump_line(),
            f.repro()
        )
    })
}

// ---- storage-fault chaos ---------------------------------------------------

/// One storage-fault chaos scenario: a seeded checkpoint-write fault lands
/// in the checkpoint window and the generational store protocol must never
/// lose a previously committed generation or silently restore a damaged
/// one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageCase {
    /// The seed — drives the derived shape and the fault's byte offset.
    pub seed: u64,
    /// World size (derived: 2–4 ranks).
    pub ranks: usize,
    /// What happens to the victim's image write.
    pub kind: StorageFaultKind,
    /// `true`: exercise exit-and-restart around the fault. `false`: the
    /// fault lands during a resume-mode checkpoint.
    pub restart: bool,
    /// Rank whose image write is damaged (derived).
    pub victim: usize,
    /// Quiesce protocol the checkpoint windows run under (derived), so
    /// the storage matrix crosses every strategy with every fault kind.
    pub drain: DrainMode,
    /// On-disk layout the checkpoint store writes (derived; pinnable via
    /// `CHAOS_STORE=flat|chunked`). In chunked mode the same fault kinds
    /// land on individual chunk files (or the recipe when every chunk
    /// deduped), so the durability contract is exercised at chunk
    /// granularity: a wrong-hash chunk must never be restored, and shared
    /// chunks of older generations must survive the damage.
    pub store: splitproc::StoreMode,
}

impl StorageCase {
    /// Derive the seed-dependent shape for an explicitly chosen fault kind
    /// and mode — the sweep matrix exercises every (kind, mode) cell.
    pub fn derive(seed: u64, kind: StorageFaultKind, restart: bool) -> Self {
        let h = |salt: u64| splitmix64(seed ^ splitmix64(salt));
        let ranks = 2 + (h(0x57A6) % 3) as usize;
        // CHAOS_STORE pins the layout for a whole sweep (the nightly runs
        // a dedicated chunked leg); otherwise the seed picks it, so the
        // default matrix interleaves both layouts.
        let store = std::env::var("CHAOS_STORE")
            .ok()
            .and_then(|v| splitproc::StoreMode::parse(&v))
            .unwrap_or(if h(0xC4B2) % 2 == 0 {
                splitproc::StoreMode::Flat
            } else {
                splitproc::StoreMode::Chunked
            });
        StorageCase {
            seed,
            ranks,
            kind,
            restart,
            victim: (h(0x71C7) % ranks as u64) as usize,
            drain: match h(0xD2A1) % 3 {
                0 => DrainMode::Alltoall,
                1 => DrainMode::Coordinator,
                _ => DrainMode::TopoSort,
            },
            store,
        }
    }
}

/// What a passing storage case demonstrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageReport {
    /// Rounds committed across all legs.
    pub committed: usize,
    /// Rounds aborted across all legs.
    pub aborted: usize,
    /// Did a restart reject a damaged generation and fall back to an
    /// older committed one?
    pub fell_back: bool,
}

fn storage_gromacs_cfg(ckpt_at_step: Option<u64>, ckpt_round: u64) -> gromacs::GromacsConfig {
    gromacs::GromacsConfig {
        atoms_per_rank: 96,
        steps: 8,
        compute_per_step: 0,
        energy_interval: 2,
        halo: 8,
        ckpt_at_step,
        ckpt_round,
    }
}

fn storage_run(
    ranks: usize,
    mcfg: &ManaConfig,
    gcfg: gromacs::GromacsConfig,
    restart: bool,
) -> Result<RunReport<gromacs::GromacsResult>, String> {
    let rt = ManaRuntime::new(ranks, mcfg.clone()).with_world_cfg(wcfg());
    let f = move |m: &mut Mana<'_>| -> mana_core::Result<gromacs::GromacsResult> {
        let mut face = ManaFace::new(m);
        gromacs::run(&mut face, &gcfg).map_err(|e| e.into_mana())
    };
    if restart {
        rt.run_restart(f)
    } else {
        rt.run_fresh(f)
    }
    .map_err(|e| e.to_string())
}

fn storage_plan(case: &StorageCase, round: u64) -> Arc<FaultPlan> {
    let mut spec = FaultSpec::quiet();
    spec.storage = Some(StorageFaultSpec {
        rank: case.victim,
        round,
        kind: case.kind,
    });
    Arc::new(FaultPlan::new(case.seed, spec))
}

/// Run one storage-fault scenario end to end and check the durability
/// contract for its (kind, mode) cell:
///
/// - `WriteError` — the round must abort via `AbortRound`, every rank must
///   resume and finish with native-identical results, and (in restart
///   mode) the previously committed generation must survive untouched.
/// - `TornWrite` / `BitFlip` — the damage is silent at commit time, so the
///   round commits; restart-time validation must reject the damaged
///   generation, falling back to the older committed one when there is
///   one.
pub fn run_storage_case(case: &StorageCase) -> Result<StorageReport, CaseFailure> {
    let sink = obs::TraceSink::wall(case.ranks, 4096);
    let fail = |stage: &str, e: String| CaseFailure {
        case: ChaosCase {
            seed: case.seed,
            ranks: case.ranks,
            workload: Workload::Gromacs,
            drain: case.drain,
            restart: case.restart,
        },
        error: format!("storage[{:?}] {stage}: {e}", case.kind),
        trace_dump: None,
    };
    // Native reference: same kernel, no checkpoints.
    let expected = {
        let cfg = storage_gromacs_cfg(None, 0);
        let w = World::new(case.ranks, wcfg());
        w.launch(move |p| {
            let mut f = NativeFace::new(p);
            gromacs::run(&mut f, &cfg)
        })
        .map_err(|e| e.to_string())
        .and_then(|outs| {
            outs.into_iter()
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| e.to_string())
        })
        .map_err(|e| fail("native reference", e))?
    };
    let dir = std::env::temp_dir().join(format!(
        "mana2_chaos_storage_{}_{}",
        case.seed,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    // Tiny chunk bounds relative to the ~KB GROMACS images, so chunked
    // cases split each payload into many chunks and the injected damage
    // really lands on an individual chunk file.
    let base = ManaConfig {
        drain: case.drain,
        ckpt_dir: dir.clone(),
        deadlock_timeout: Some(Duration::from_secs(30)),
        trace: Some(sink.clone()),
        store: splitproc::StoreConfig {
            mode: case.store,
            chunk: splitproc::ChunkParams {
                min_size: 64,
                avg_size: 256,
                max_size: 1024,
            },
            ..Default::default()
        },
        ..ManaConfig::default()
    };
    let result = storage_case_inner(case, &expected, &dir, &base, fail);
    let _ = std::fs::remove_dir_all(&dir);
    match result {
        Ok(rep) => {
            if std::env::var("MANA2_TRACE").is_ok() {
                if let Some(p) = dump_case_trace(&sink, case.seed, "chaos_storage_pass") {
                    eprintln!("mana2: storage chaos trace dump: {}", p.display());
                }
            }
            Ok(rep)
        }
        Err(mut f) => {
            f.trace_dump = dump_case_trace(&sink, case.seed, "chaos_storage_fail");
            Err(f)
        }
    }
}

fn storage_case_inner(
    case: &StorageCase,
    expected: &[gromacs::GromacsResult],
    dir: &std::path::Path,
    base: &ManaConfig,
    fail: impl Fn(&str, String) -> CaseFailure,
) -> Result<StorageReport, CaseFailure> {
    use splitproc::store;
    let n = case.ranks;
    if !case.restart {
        // Resume mode: the fault lands on the only checkpoint round.
        let mcfg = ManaConfig {
            fault: Some(storage_plan(case, 0)),
            ..base.clone()
        };
        let pass = storage_run(n, &mcfg, storage_gromacs_cfg(Some(3), 0), false)
            .map_err(|e| fail("faulted run", e))?;
        if !pass.all_finished() {
            return Err(fail(
                "faulted run",
                format!("did not finish: {:?}", pass.outcomes),
            ));
        }
        let n_aborted = pass.coord.aborted_rounds.len();
        let n_committed = pass.coord.rounds.len();
        if pass.values() != expected {
            return Err(fail("comparison", "diverged from native reference".into()));
        }
        match case.kind {
            StorageFaultKind::WriteError => {
                // The round must have aborted; nothing durable may remain.
                if n_aborted != 1 || n_committed != 0 {
                    return Err(fail(
                        "protocol",
                        format!("expected 1 aborted / 0 committed rounds, got {n_aborted} / {n_committed}"),
                    ));
                }
                if store::select_generation(dir, Some(n)).is_ok() {
                    return Err(fail(
                        "store",
                        "aborted round left a selectable generation".into(),
                    ));
                }
                Ok(StorageReport {
                    committed: 0,
                    aborted: 1,
                    fell_back: false,
                })
            }
            StorageFaultKind::TornWrite | StorageFaultKind::BitFlip => {
                // Silent damage: the round commits, but restart-time
                // validation must refuse to ever restore it.
                if n_committed != 1 {
                    return Err(fail(
                        "protocol",
                        format!("expected 1 committed round, got {n_committed}"),
                    ));
                }
                match store::select_generation(dir, Some(n)) {
                    Ok(sel) => Err(fail(
                        "store",
                        format!("damaged generation {} passed validation", sel.round),
                    )),
                    Err(store::StoreError::NoUsableGeneration { rejected, .. })
                        if rejected.iter().any(|r| r.round == 0) =>
                    {
                        Ok(StorageReport {
                            committed: 1,
                            aborted: 0,
                            fell_back: false,
                        })
                    }
                    Err(e) => Err(fail("store", format!("unexpected store error: {e}"))),
                }
            }
        }
    } else {
        // Exit-and-restart: gen_0 commits cleanly, then the fault lands on
        // round 1 after a restart.
        let exit_cfg = ManaConfig {
            exit_after_ckpt: true,
            ..base.clone()
        };
        let leg1 = storage_run(n, &exit_cfg, storage_gromacs_cfg(Some(2), 0), false)
            .map_err(|e| fail("leg 1", e))?;
        if !leg1.all_checkpointed() {
            return Err(fail(
                "leg 1",
                format!("did not checkpoint: {:?}", leg1.outcomes),
            ));
        }
        let mcfg = ManaConfig {
            fault: Some(storage_plan(case, 1)),
            exit_after_ckpt: true,
            ..base.clone()
        };
        let leg2 = storage_run(n, &mcfg, storage_gromacs_cfg(Some(5), 1), true)
            .map_err(|e| fail("leg 2", e))?;
        if leg2.restored_round != Some(0) {
            return Err(fail(
                "leg 2",
                format!("restored {:?}, want round 0", leg2.restored_round),
            ));
        }
        match case.kind {
            StorageFaultKind::WriteError => {
                // Round 1 aborts; ranks must resume and run to completion,
                // and round 0 must survive the failed round untouched.
                if !leg2.all_finished() {
                    return Err(fail(
                        "leg 2",
                        format!("did not finish: {:?}", leg2.outcomes),
                    ));
                }
                if leg2.coord.aborted_rounds.len() != 1 || !leg2.coord.rounds.is_empty() {
                    return Err(fail(
                        "protocol",
                        "round 1 should abort, round 0 stay".into(),
                    ));
                }
                if leg2.rank_stats.iter().any(|s| s.ckpt_aborts != 1) {
                    return Err(fail("protocol", "every rank must observe the abort".into()));
                }
                if leg2.values() != expected {
                    return Err(fail("comparison", "diverged from native reference".into()));
                }
                let sel = store::select_generation(dir, Some(n))
                    .map_err(|e| fail("store", e.to_string()))?;
                if sel.round != 0 {
                    return Err(fail(
                        "store",
                        format!("expected round 0 to survive, got {}", sel.round),
                    ));
                }
                Ok(StorageReport {
                    committed: 1,
                    aborted: 1,
                    fell_back: false,
                })
            }
            StorageFaultKind::TornWrite | StorageFaultKind::BitFlip => {
                // Round 1 commits over a damaged image and the job exits;
                // the next restart must reject gen_1 and fall back to
                // gen_0, then finish with native-identical results.
                if !leg2.all_checkpointed() {
                    return Err(fail(
                        "leg 2",
                        format!("did not checkpoint: {:?}", leg2.outcomes),
                    ));
                }
                let sel = store::select_generation(dir, Some(n))
                    .map_err(|e| fail("store", e.to_string()))?;
                if sel.round != 0 || !sel.rejected.iter().any(|r| r.round == 1) {
                    return Err(fail(
                        "store",
                        format!(
                            "expected fallback 1→0, got round {} (rejected {:?})",
                            sel.round, sel.rejected
                        ),
                    ));
                }
                let leg3 = storage_run(n, base, storage_gromacs_cfg(None, 0), true)
                    .map_err(|e| fail("leg 3", e))?;
                if leg3.restored_round != Some(0) {
                    return Err(fail(
                        "leg 3",
                        format!("restored {:?}, want round 0", leg3.restored_round),
                    ));
                }
                if !leg3.all_finished() {
                    return Err(fail(
                        "leg 3",
                        format!("did not finish: {:?}", leg3.outcomes),
                    ));
                }
                if leg3.values() != expected {
                    return Err(fail("comparison", "diverged from native reference".into()));
                }
                Ok(StorageReport {
                    committed: 2,
                    aborted: 0,
                    fell_back: true,
                })
            }
        }
    }
}

/// Run a storage case, formatting failures with the case description.
pub fn check_storage_case(case: &StorageCase) -> Result<StorageReport, String> {
    run_storage_case(case).map_err(|f| {
        format!(
            "storage chaos case failed\n  seed: {}\n  case: {case:?}\n  error: {}\n  \
             trace dump: {}\n  repro: {}",
            case.seed,
            f.error,
            f.trace_dump_line(),
            f.repro()
        )
    })
}

// ---- reentrant-restart (restart-kill) chaos --------------------------------

/// One reentrant-restart chaos scenario: a committed checkpoint store, a
/// sequence of restart attempts each killed at a seeded journal-step
/// boundary (`FaultSpec::restart_kill`), then a clean restart that must
/// converge — same final state as an uncrashed restart, journal
/// idempotent, no restored rank lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestartKillCase {
    /// The seed — drives the derived shape and kill boundaries.
    pub seed: u64,
    /// World size (derived: 2–4 ranks).
    pub ranks: usize,
    /// Journal-step boundaries at which successive restart attempts die.
    /// One entry = single crash; two = a double crash (crash during the
    /// crash recovery), and so on.
    pub kills: Vec<u64>,
    /// `Some(failed)`: partial restart replacing only these ranks.
    /// `None`: full restart of every rank.
    pub partial: Option<Vec<usize>>,
    /// Optional storage-fault cross: the newest generation is silently
    /// damaged before the killed restarts, so recovery must *also* fall
    /// back to the older committed generation while surviving crashes.
    pub storage: Option<StorageFaultKind>,
    /// Execution engine for every leg.
    pub engine: EngineKind,
    /// Quiesce protocol for every checkpoint window (derived), so crash
    /// storms cross the restart journal with every strategy.
    pub drain: DrainMode,
}

impl RestartKillCase {
    /// How many ranks this case's restarts journal (`RankRestored`).
    pub fn scope(&self) -> u64 {
        self.partial
            .as_ref()
            .map(|f| f.len() as u64)
            .unwrap_or(self.ranks as u64)
    }

    /// Journal-step boundaries one restart attempt passes: two per step
    /// (just before and just after the durable append), over intent,
    /// validation, one `rank_restored` per replaced rank, `comms_rebuilt`
    /// and `restart_committed`. Kills at `0..boundaries()` cover crashing
    /// the restart around every record it writes.
    pub fn boundaries(&self) -> u64 {
        2 * (self.scope() + 4)
    }

    /// Derive the seed-dependent shape for a chosen (storage, partial,
    /// engine) cell of the sweep matrix.
    pub fn derive(
        seed: u64,
        storage: Option<StorageFaultKind>,
        partial: bool,
        engine: EngineKind,
    ) -> Self {
        let h = |salt: u64| splitmix64(seed ^ splitmix64(salt));
        let ranks = 2 + (h(0xF00D) % 3) as usize;
        let partial = partial.then(|| {
            // 1..ranks replaced ranks, contiguous from a seeded start, so
            // at least one survivor remains. For a storage cross the
            // start is the storage victim: a survivor keeps its state in
            // a real partial restart and never reads its image, but this
            // in-process simulation rebuilds survivors from their images
            // too — so the damaged rank must be in the replaced set for
            // subset validation to see (and reject) the damage.
            let k = 1 + (h(0xFA11) % (ranks as u64 - 1)) as usize;
            let start = if storage.is_some() {
                (h(0x71C7) % ranks as u64) as usize
            } else {
                (h(0x57A7) % ranks as u64) as usize
            };
            let mut failed: Vec<usize> = (0..k).map(|i| (start + i) % ranks).collect();
            failed.sort_unstable();
            failed
        });
        let scope = partial.as_ref().map(|f| f.len()).unwrap_or(ranks) as u64;
        let total = 2 * (scope + 4);
        let n_kills = 1 + (h(0x2CA5) % 2) as usize;
        let kills = (0..n_kills as u64)
            .map(|i| h(0x517E ^ (i << 8)) % total)
            .collect();
        RestartKillCase {
            seed,
            ranks,
            kills,
            partial,
            storage,
            engine,
            drain: match h(0xD2A1) % 3 {
                0 => DrainMode::Alltoall,
                1 => DrainMode::Coordinator,
                _ => DrainMode::TopoSort,
            },
        }
    }
}

/// What a passing restart-kill case demonstrated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestartKillReport {
    /// Killed restart attempts observed before convergence.
    pub attempts: usize,
    /// Did recovery fall back past a damaged generation?
    pub fell_back: bool,
    /// Journal records on disk after convergence.
    pub journal_records: usize,
}

fn restart_kill_plan(seed: u64, kill: u64) -> Arc<FaultPlan> {
    let spec = FaultSpec {
        restart_kill: Some(kill),
        ..FaultSpec::quiet()
    };
    Arc::new(FaultPlan::new(seed, spec))
}

fn rk_wcfg(engine: EngineKind) -> WorldCfg {
    WorldCfg { engine, ..wcfg() }
}

fn rk_run(
    case: &RestartKillCase,
    mcfg: &ManaConfig,
    gcfg: gromacs::GromacsConfig,
    restart: bool,
) -> Result<RunReport<gromacs::GromacsResult>, RuntimeError> {
    let rt = ManaRuntime::new(case.ranks, mcfg.clone()).with_world_cfg(rk_wcfg(case.engine));
    let f = move |m: &mut Mana<'_>| -> mana_core::Result<gromacs::GromacsResult> {
        let mut face = ManaFace::new(m);
        gromacs::run(&mut face, &gcfg).map_err(|e| e.into_mana())
    };
    match (&case.partial, restart) {
        (_, false) => rt.run_fresh(f),
        (None, true) => rt.run_restart(f),
        (Some(failed), true) => rt.run_restart_partial(failed, f),
    }
}

/// Build the checkpoint store a restart-kill case recovers from: a clean
/// committed generation 0, plus — for the storage cross — a silently
/// damaged generation 1 that restart validation must reject.
fn rk_prepare(case: &RestartKillCase, base: &ManaConfig) -> Result<(), String> {
    let exit_cfg = ManaConfig {
        exit_after_ckpt: true,
        ..base.clone()
    };
    let leg = rk_run(case, &exit_cfg, storage_gromacs_cfg(Some(2), 0), false)
        .map_err(|e| format!("prepare leg 1: {e}"))?;
    if !leg.all_checkpointed() {
        return Err(format!(
            "prepare leg 1 did not checkpoint: {:?}",
            leg.outcomes
        ));
    }
    if let Some(kind) = case.storage {
        let h = |salt: u64| splitmix64(case.seed ^ splitmix64(salt));
        let victim = (h(0x71C7) % case.ranks as u64) as usize;
        let spec = FaultSpec {
            storage: Some(StorageFaultSpec {
                rank: victim,
                round: 1,
                kind,
            }),
            ..FaultSpec::quiet()
        };
        let mcfg = ManaConfig {
            fault: Some(Arc::new(FaultPlan::new(case.seed, spec))),
            exit_after_ckpt: true,
            ..base.clone()
        };
        // A *full* restart here regardless of case.partial: the damaged
        // round-1 generation must exist before the killed restarts start.
        let rt = ManaRuntime::new(case.ranks, mcfg).with_world_cfg(rk_wcfg(case.engine));
        let gcfg = storage_gromacs_cfg(Some(5), 1);
        let leg2 = rt
            .run_restart(move |m: &mut Mana<'_>| {
                let mut face = ManaFace::new(m);
                gromacs::run(&mut face, &gcfg).map_err(|e| e.into_mana())
            })
            .map_err(|e| format!("prepare leg 2: {e}"))?;
        match kind {
            // The write error aborts round 1, so the job finishes instead
            // of exiting; gen 0 remains the only (clean) generation.
            StorageFaultKind::WriteError => {
                if !leg2.all_finished() {
                    return Err(format!("prepare leg 2 did not finish: {:?}", leg2.outcomes));
                }
            }
            // Silent damage commits; the killed restarts must skip it.
            StorageFaultKind::TornWrite | StorageFaultKind::BitFlip => {
                if !leg2.all_checkpointed() {
                    return Err(format!(
                        "prepare leg 2 did not checkpoint: {:?}",
                        leg2.outcomes
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Run one restart-kill scenario end to end:
///
/// 1. Build identical stores in a baseline dir and a victim dir.
/// 2. Baseline: one clean (uncrashed) restart to completion.
/// 3. Victim: one restart attempt per kill boundary in `case.kills`, each
///    of which must die with `RuntimeError::RestartKilled`, then a clean
///    restart that must converge.
/// 4. Oracle: victim's final values and restored generation equal the
///    baseline's (and the native reference), the on-disk journal passes
///    [`mana_core::check_journal`], its final epoch is committed, and the
///    set of journaled `RankRestored` ranks is exactly the restart scope —
///    no step duplicated, no rank lost, no matter where the crashes hit.
pub fn run_restart_kill_case(case: &RestartKillCase) -> Result<RestartKillReport, CaseFailure> {
    let sink = obs::TraceSink::wall(case.ranks, 4096);
    let fail = |stage: &str, e: String| CaseFailure {
        case: ChaosCase {
            seed: case.seed,
            ranks: case.ranks,
            workload: Workload::Gromacs,
            drain: case.drain,
            restart: true,
        },
        error: format!("restart_kill{:?} {stage}: {e}", case.kills),
        trace_dump: None,
    };
    // Native reference: same kernel, no checkpoints.
    let expected = {
        let cfg = storage_gromacs_cfg(None, 0);
        let w = World::new(case.ranks, rk_wcfg(case.engine));
        w.launch(move |p| {
            let mut f = NativeFace::new(p);
            gromacs::run(&mut f, &cfg)
        })
        .map_err(|e| e.to_string())
        .and_then(|outs| {
            outs.into_iter()
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| e.to_string())
        })
        .map_err(|e| fail("native reference", e))?
    };
    let mk_dir = |tag: &str| {
        std::env::temp_dir().join(format!(
            "mana2_chaos_rkill_{tag}_{}_{}",
            case.seed,
            std::process::id()
        ))
    };
    let (bdir, vdir) = (mk_dir("base"), mk_dir("victim"));
    let _ = std::fs::remove_dir_all(&bdir);
    let _ = std::fs::remove_dir_all(&vdir);
    let result = rk_case_inner(case, &expected, &bdir, &vdir, &sink, &fail);
    // `CHAOS_KEEP_STORES` leaves the stormed stores (and their restart
    // journals) on disk so CI can point `mana2-inspect journal --verify`
    // at the real artifact of a storm instead of a synthetic fixture.
    let keep = std::env::var("CHAOS_KEEP_STORES").is_ok_and(|v| v != "0");
    if keep {
        eprintln!("chaos: keeping stormed stores: {}", vdir.display());
    } else {
        let _ = std::fs::remove_dir_all(&bdir);
        let _ = std::fs::remove_dir_all(&vdir);
    }
    result.map_err(|mut f| {
        f.trace_dump = dump_case_trace(&sink, case.seed, "chaos_rkill_fail");
        f
    })
}

fn rk_case_inner(
    case: &RestartKillCase,
    expected: &[gromacs::GromacsResult],
    bdir: &std::path::Path,
    vdir: &std::path::Path,
    sink: &Arc<obs::TraceSink>,
    fail: &impl Fn(&str, String) -> CaseFailure,
) -> Result<RestartKillReport, CaseFailure> {
    use splitproc::journal;
    let final_gcfg = storage_gromacs_cfg(None, 0);
    let base_of = |dir: &std::path::Path| ManaConfig {
        drain: case.drain,
        ckpt_dir: dir.to_path_buf(),
        deadlock_timeout: Some(Duration::from_secs(30)),
        trace: Some(sink.clone()),
        ..ManaConfig::default()
    };
    rk_prepare(case, &base_of(bdir)).map_err(|e| fail("baseline prepare", e))?;
    rk_prepare(case, &base_of(vdir)).map_err(|e| fail("victim prepare", e))?;
    // Baseline: the uncrashed restart this case's crashed one must match.
    let baseline = rk_run(case, &base_of(bdir), final_gcfg.clone(), true)
        .map_err(|e| fail("baseline restart", e.to_string()))?;
    if !baseline.all_finished() {
        return Err(fail(
            "baseline restart",
            format!("did not finish: {:?}", baseline.outcomes),
        ));
    }
    let baseline_restored = baseline.restored_round;
    if baseline.values() != expected {
        return Err(fail(
            "baseline restart",
            "baseline diverged from native reference".into(),
        ));
    }
    // Victim: killed attempts...
    for (i, &k) in case.kills.iter().enumerate() {
        let mcfg = ManaConfig {
            fault: Some(restart_kill_plan(case.seed, k)),
            ..base_of(vdir)
        };
        match rk_run(case, &mcfg, final_gcfg.clone(), true) {
            Err(RuntimeError::RestartKilled { step }) if step == k => {}
            Err(RuntimeError::RestartKilled { step }) => {
                return Err(fail(
                    "kill",
                    format!("attempt {i} killed at boundary {step}, armed {k}"),
                ));
            }
            Ok(_) => {
                return Err(fail(
                    "kill",
                    format!("attempt {i} survived an armed kill at boundary {k}"),
                ));
            }
            Err(e) => {
                return Err(fail(
                    "kill",
                    format!("attempt {i} (boundary {k}) died of the wrong error: {e}"),
                ));
            }
        }
    }
    // ...then the clean restart that must converge.
    let report = rk_run(case, &base_of(vdir), final_gcfg, true)
        .map_err(|e| fail("final restart", e.to_string()))?;
    if !report.all_finished() {
        return Err(fail(
            "final restart",
            format!("did not finish: {:?}", report.outcomes),
        ));
    }
    if report.restored_round != baseline_restored {
        return Err(fail(
            "oracle",
            format!(
                "restored generation {:?} differs from baseline {:?}",
                report.restored_round, baseline_restored
            ),
        ));
    }
    let fell_back = report.restored_round == Some(0)
        && matches!(
            case.storage,
            Some(StorageFaultKind::TornWrite | StorageFaultKind::BitFlip)
        );
    let scope: Vec<u64> = case
        .partial
        .clone()
        .map(|f| f.into_iter().map(|r| r as u64).collect())
        .unwrap_or_else(|| (0..case.ranks as u64).collect());
    if report.restored_ranks
        != Some(
            case.partial
                .clone()
                .unwrap_or_else(|| (0..case.ranks).collect()),
        )
    {
        return Err(fail(
            "oracle",
            format!("restored_ranks {:?} != scope", report.restored_ranks),
        ));
    }
    if report.values() != expected {
        return Err(fail(
            "oracle",
            "final state diverged from the uncrashed baseline".into(),
        ));
    }
    // Journal oracle: protocol invariants hold over everything the crash
    // storm wrote, and the final epoch committed with the full scope.
    let records = journal::read_records(vdir).map_err(|e| fail("journal", e.to_string()))?;
    let violations = mana_core::check_journal(&records);
    if !violations.is_empty() {
        return Err(fail("journal", violations.join("; ")));
    }
    let epochs = journal::replay_epochs(&records);
    let Some(last) = epochs.last() else {
        return Err(fail("journal", "no epochs journaled".into()));
    };
    if !last.committed {
        return Err(fail(
            "journal",
            format!("final epoch {} never committed", last.epoch),
        ));
    }
    let restored: Vec<u64> = last.restored.iter().copied().collect();
    if restored != scope {
        return Err(fail(
            "journal",
            format!("epoch {} restored {restored:?}, want {scope:?}", last.epoch),
        ));
    }
    Ok(RestartKillReport {
        attempts: case.kills.len(),
        fell_back,
        journal_records: records.len(),
    })
}

/// Run a restart-kill case, formatting failures with the case description.
pub fn check_restart_kill_case(case: &RestartKillCase) -> Result<RestartKillReport, String> {
    run_restart_kill_case(case).map_err(|f| {
        format!(
            "restart-kill chaos case failed\n  seed: {}\n  case: {case:?}\n  error: {}\n  \
             trace dump: {}",
            case.seed,
            f.error,
            f.trace_dump_line(),
        )
    })
}

/// `CHAOS_SEED` env var, if set (the replay hook).
pub fn env_seed() -> Option<u64> {
    std::env::var("CHAOS_SEED").ok()?.trim().parse().ok()
}

/// `CHAOS_BASE_SEED` env var, or a fixed default. CI's nightly job passes
/// its run id here so every night sweeps fresh seeds.
pub fn env_base_seed() -> u64 {
    std::env::var("CHAOS_BASE_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0xC0FF_EE00)
}

/// `CHAOS_SWEEP_COUNT` env var, or a small default so routine test runs
/// stay fast while CI can ask for 32+.
pub fn env_sweep_count() -> u64 {
    std::env::var("CHAOS_SWEEP_COUNT")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_derivation_is_deterministic() {
        for seed in [0u64, 1, 42, u64::MAX] {
            assert_eq!(ChaosCase::from_seed(seed), ChaosCase::from_seed(seed));
            let c = ChaosCase::from_seed(seed);
            assert!((2..=4).contains(&c.ranks), "{c:?}");
        }
    }

    #[test]
    fn nearby_seeds_explore_different_shapes() {
        let cases: Vec<ChaosCase> = (0..32).map(ChaosCase::from_seed).collect();
        assert!(cases.iter().any(|c| c.workload == Workload::Gromacs));
        assert!(cases.iter().any(|c| c.workload == Workload::Cg));
        assert!(cases.iter().any(|c| c.drain == DrainMode::Alltoall));
        assert!(cases.iter().any(|c| c.drain == DrainMode::Coordinator));
        assert!(cases.iter().any(|c| c.drain == DrainMode::TopoSort));
        assert!(cases.iter().any(|c| c.restart));
        assert!(cases.iter().any(|c| !c.restart));
    }

    #[test]
    fn repro_command_names_the_seed() {
        let cmd = repro_command(12345);
        assert!(cmd.contains("CHAOS_SEED=12345"));
        assert!(cmd.contains("seed_replay"));
    }

    #[test]
    fn shrink_disarms_everything_when_failure_is_unconditional() {
        // A case whose "failure" does not depend on the plan at all: the
        // shrinker should disarm every feature (each reduced run is
        // exercised via run_case_with_plan, which still passes here, so
        // nothing is disarmed — assert the other direction instead by
        // checking the spec arithmetic on a quiet candidate).
        let mut s = FaultSpec::quiet();
        s.delay_pct = 20;
        s.max_delay_us = 100;
        let mut c = s.clone();
        c.delay_pct = 0;
        c.max_delay_us = 0;
        assert!(c.is_quiet());
        assert_ne!(c, s);
    }
}
