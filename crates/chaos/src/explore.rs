//! Schedule-space exploration over the deterministic [`mpisim`] coop
//! engine.
//!
//! PR 4 made every coop interleaving a pure function of
//! `(workers, sched_seed)`; the [`mpisim::SchedulePolicy`] work turned
//! each individual scheduling decision into a first-class, replayable
//! *choice* (an index into the ready queue). This module converts that
//! determinism investment into an active interleaving-bug detector:
//!
//! 1. **Search** ([`explore`]): a bounded random walk over choice-vector
//!    *prefixes*. Every executed schedule is recorded in full; each
//!    decision after the scripted prefix becomes a branch point, and each
//!    untried ready-queue index at a branch point becomes a new frontier
//!    prefix. Replaying a prefix deterministically reproduces every
//!    decision before the deviation, so the search walks a tree of real,
//!    reproducible executions.
//! 2. **Pruning**: partial-order-reduction-*style*, not a model checker.
//!    Exact duplicate prefixes are never queued twice; a deviation whose
//!    `(ready set, chosen rank)` context previously produced an
//!    already-seen interleaving fingerprint is treated as sterile and
//!    skipped; runs whose fingerprint was already visited are not
//!    expanded. The fingerprint is the *full* trace-event rings (schedule
//!    sensitive), while bug detection uses the schedule-invariant oracle
//!    stack: native-reference transparency, protocol round counts, and
//!    the [`crate::determinism_token`] / `schedule_invariant()` keys.
//!    Pruning can skip real interleavings — it trades exhaustiveness for
//!    throughput, which is the right trade for a bug hunter.
//! 3. **Minimization** ([`minimize_choices`]): delta debugging (ddmin)
//!    over the failing choice vector, followed by prefix truncation, so
//!    the repro is prefix-minimal: dropping its last choice passes.
//! 4. **Repro**: every failure prints a one-line
//!    `CHAOS_SCHEDULE=<hex choices>` command (alongside the existing
//!    `CHAOS_SEED` hook) that replays the exact interleaving through the
//!    `explore_suite::schedule_replay` test.

use crate::{case_token_rings, splitmix64, WlValue, Workload};
use mana_core::obs;
use mana_core::{DrainMode, Mana, ManaConfig, ManaRuntime, RunReport};
use mpisim::{
    CoopCfg, EngineKind, SchedDecision, ScheduleDivergence, SchedulePolicy, ScheduleScript, World,
    WorldCfg,
};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use workloads::{cg, gromacs, ManaFace, NativeFace};

// ---- choice-vector codecs ---------------------------------------------------

/// Encode a choice vector as the `CHAOS_SCHEDULE` hex string: two hex
/// digits per choice. Ready queues are tiny (≤ world size), so a byte per
/// decision is plenty; choices above 255 are a usage error.
pub fn encode_choices(choices: &[u32]) -> String {
    let mut s = String::with_capacity(choices.len() * 2);
    for &c in choices {
        assert!(c <= 0xFF, "choice {c} exceeds one byte");
        s.push_str(&format!("{c:02x}"));
    }
    s
}

/// Decode a `CHAOS_SCHEDULE` hex string back into a choice vector.
pub fn decode_choices(hex: &str) -> Result<Vec<u32>, String> {
    let hex = hex.trim();
    if !hex.len().is_multiple_of(2) {
        return Err(format!(
            "CHAOS_SCHEDULE must have an even number of hex digits, got {}",
            hex.len()
        ));
    }
    (0..hex.len())
        .step_by(2)
        .map(|i| {
            u32::from_str_radix(&hex[i..i + 2], 16)
                .map_err(|e| format!("bad hex byte {:?}: {e}", &hex[i..i + 2]))
        })
        .collect()
}

/// `CHAOS_SCHEDULE` env var, decoded (the schedule-replay hook).
pub fn env_schedule() -> Option<Vec<u32>> {
    let raw = std::env::var("CHAOS_SCHEDULE").ok()?;
    match decode_choices(&raw) {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!("mana2: ignoring malformed CHAOS_SCHEDULE: {e}");
            None
        }
    }
}

// ---- target description -----------------------------------------------------

/// Stable name of a workload for fixtures, env vars, and JSON.
pub fn workload_name(w: Workload) -> &'static str {
    match w {
        Workload::Gromacs => "gromacs",
        Workload::Cg => "cg",
    }
}

/// Parse a workload name (inverse of [`workload_name`]).
pub fn parse_workload(s: &str) -> Result<Workload, String> {
    match s.trim().to_ascii_lowercase().as_str() {
        "gromacs" => Ok(Workload::Gromacs),
        "cg" => Ok(Workload::Cg),
        other => Err(format!("unknown workload {other:?} (want gromacs|cg)")),
    }
}

/// Stable name of a drain mode for fixtures, env vars, and JSON.
pub fn drain_name(d: DrainMode) -> &'static str {
    d.name()
}

/// Parse a drain-mode name (inverse of [`drain_name`]).
pub fn parse_drain(s: &str) -> Result<DrainMode, String> {
    DrainMode::parse(s).ok_or_else(|| {
        format!(
            "unknown drain mode {:?} (want alltoall|coordinator|toposort)",
            s.trim()
        )
    })
}

/// Extra failure oracle run over each completed schedule (after the
/// built-in transparency/protocol checks pass). Tests inject
/// ordering-sensitive assertions here.
pub type Oracle = Arc<dyn Fn(&ScheduleRun) -> Result<(), String> + Send + Sync>;

/// One workload shape the explorer drives schedules through: a resume-mode
/// checkpoint round (rank 0 requests at a fixed step) with the native
/// thread-engine reference cached up front.
pub struct ExploreTarget {
    /// Seed: both the coop scheduler's `sched_seed` (the seeded completion
    /// beyond a scripted prefix) and the derivation seed in
    /// [`ExploreTarget::from_seed`].
    pub seed: u64,
    /// World size.
    pub ranks: usize,
    /// Coop worker-token count. Exploration wants 1 (fully deterministic
    /// interleavings); higher counts still replay prefixes best-effort.
    pub workers: usize,
    /// Application kernel.
    pub workload: Workload,
    /// Drain algorithm under test.
    pub drain: DrainMode,
    expected: Vec<WlValue>,
    oracle: Option<Oracle>,
    run_counter: AtomicU64,
}

fn explore_gromacs_cfg(ckpt: bool) -> gromacs::GromacsConfig {
    gromacs::GromacsConfig {
        atoms_per_rank: 48,
        steps: 6,
        compute_per_step: 0,
        energy_interval: 2,
        halo: 8,
        ckpt_at_step: if ckpt { Some(3) } else { None },
        ckpt_round: 0,
    }
}

fn explore_cg_cfg(ckpt: bool) -> cg::CgConfig {
    cg::CgConfig {
        local_n: 24,
        max_iters: 16,
        tol: 1e-10,
        ckpt_at_iter: if ckpt { Some(5) } else { None },
        ckpt_round: 0,
    }
}

impl ExploreTarget {
    /// Build a target, running the fault-free native reference (thread
    /// engine, no checkpoint) once to cache the expected results.
    pub fn new(
        seed: u64,
        ranks: usize,
        workers: usize,
        workload: Workload,
        drain: DrainMode,
    ) -> Result<ExploreTarget, String> {
        if !(1..=8).contains(&ranks) {
            return Err(format!("ranks must be 1..=8, got {ranks}"));
        }
        if workers == 0 {
            return Err("workers must be >= 1".into());
        }
        let wc = WorldCfg {
            watchdog: Some(Duration::from_secs(60)),
            engine: EngineKind::Thread,
            ..WorldCfg::default()
        };
        let w = World::new(ranks, wc);
        let expected = match workload {
            Workload::Gromacs => {
                let cfg = explore_gromacs_cfg(false);
                w.launch(move |p| {
                    let mut f = NativeFace::new(p);
                    gromacs::run(&mut f, &cfg).map(WlValue::G)
                })
            }
            Workload::Cg => {
                let cfg = explore_cg_cfg(false);
                w.launch(move |p| {
                    let mut f = NativeFace::new(p);
                    cg::run(&mut f, &cfg).map(WlValue::C)
                })
            }
        }
        .map_err(|e| format!("native reference: {e}"))?
        .into_iter()
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("native reference: {e}"))?;
        Ok(ExploreTarget {
            seed,
            ranks,
            workers,
            workload,
            drain,
            expected,
            oracle: None,
            run_counter: AtomicU64::new(0),
        })
    }

    /// Derive the whole shape from a seed (same splitmix derivation style
    /// as [`crate::ChaosCase::from_seed`]), at workers=1.
    pub fn from_seed(seed: u64) -> Result<ExploreTarget, String> {
        let h = |salt: u64| splitmix64(seed ^ splitmix64(salt));
        let ranks = 2 + (h(0x5C4E) % 3) as usize;
        let workload = if h(0x3017) % 2 == 0 {
            Workload::Gromacs
        } else {
            Workload::Cg
        };
        let drain = match h(0xD2A1) % 3 {
            0 => DrainMode::Alltoall,
            1 => DrainMode::Coordinator,
            _ => DrainMode::TopoSort,
        };
        ExploreTarget::new(seed, ranks, 1, workload, drain)
    }

    /// Like [`ExploreTarget::from_seed`], but any `CHAOS_EXPLORE_RANKS` /
    /// `CHAOS_EXPLORE_WORKERS` / `CHAOS_EXPLORE_WORKLOAD` /
    /// `CHAOS_EXPLORE_DRAIN` env vars override the derived shape — the
    /// repro line for a non-derived target sets them explicitly.
    pub fn from_env_or_seed(seed: u64) -> Result<ExploreTarget, String> {
        let h = |salt: u64| splitmix64(seed ^ splitmix64(salt));
        let envp = |k: &str| std::env::var(k).ok();
        let ranks = match envp("CHAOS_EXPLORE_RANKS") {
            Some(v) => v
                .trim()
                .parse::<usize>()
                .map_err(|e| format!("CHAOS_EXPLORE_RANKS: {e}"))?,
            None => 2 + (h(0x5C4E) % 3) as usize,
        };
        let workers = match envp("CHAOS_EXPLORE_WORKERS") {
            Some(v) => v
                .trim()
                .parse::<usize>()
                .map_err(|e| format!("CHAOS_EXPLORE_WORKERS: {e}"))?,
            None => 1,
        };
        let workload = match envp("CHAOS_EXPLORE_WORKLOAD") {
            Some(v) => parse_workload(&v)?,
            None => {
                if h(0x3017) % 2 == 0 {
                    Workload::Gromacs
                } else {
                    Workload::Cg
                }
            }
        };
        let drain = match envp("CHAOS_EXPLORE_DRAIN") {
            Some(v) => parse_drain(&v)?,
            None => match h(0xD2A1) % 3 {
                0 => DrainMode::Alltoall,
                1 => DrainMode::Coordinator,
                _ => DrainMode::TopoSort,
            },
        };
        ExploreTarget::new(seed, ranks, workers, workload, drain)
    }

    /// Attach an extra failure oracle (ordering-sensitive assertions).
    pub fn with_oracle(mut self, oracle: Oracle) -> Self {
        self.oracle = Some(oracle);
        self
    }

    /// The one-line command that replays `choices` against this target.
    pub fn repro_command(&self, choices: &[u32]) -> String {
        format!(
            "CHAOS_SEED={} CHAOS_EXPLORE_RANKS={} CHAOS_EXPLORE_WORKERS={} \
             CHAOS_EXPLORE_WORKLOAD={} CHAOS_EXPLORE_DRAIN={} CHAOS_SCHEDULE={} \
             cargo test -p chaos --test explore_suite schedule_replay -- --nocapture",
            self.seed,
            self.ranks,
            self.workers,
            workload_name(self.workload),
            drain_name(self.drain),
            encode_choices(choices),
        )
    }

    fn scratch_dir(&self) -> PathBuf {
        let run = self.run_counter.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "mana2_explore_{}_{}_{}",
            self.seed,
            std::process::id(),
            run
        ))
    }

    fn launch(&self, rt: &ManaRuntime) -> Result<RunReport<WlValue>, String> {
        let workload = self.workload;
        let g = explore_gromacs_cfg(true);
        let c = explore_cg_cfg(true);
        rt.run_fresh(move |m: &mut Mana<'_>| -> mana_core::Result<WlValue> {
            let mut face = ManaFace::new(m);
            match workload {
                Workload::Gromacs => gromacs::run(&mut face, &g)
                    .map(WlValue::G)
                    .map_err(|e| e.into_mana()),
                Workload::Cg => cg::run(&mut face, &c)
                    .map(WlValue::C)
                    .map_err(|e| e.into_mana()),
            }
        })
        .map_err(|e| e.to_string())
    }

    /// Execute one schedule: replay `choices` as the decision prefix (the
    /// seeded policy completes the run beyond it) and collect everything
    /// the explorer needs — the full decision log, interleaving
    /// fingerprint, schedule-invariant equivalence key, and the verdict of
    /// the oracle stack.
    pub fn run_schedule(&self, choices: &[u32]) -> ScheduleRun {
        let sink = obs::TraceSink::wall(self.ranks, 16 * 1024);
        self.run_schedule_traced(choices, &sink)
    }

    /// [`ExploreTarget::run_schedule`] recording into the caller's sink —
    /// the flight-recorder dump path for failing schedules.
    pub fn run_schedule_traced(&self, choices: &[u32], sink: &Arc<obs::TraceSink>) -> ScheduleRun {
        let script = ScheduleScript::new(choices.to_vec());
        let wc = WorldCfg {
            watchdog: Some(Duration::from_secs(60)),
            engine: EngineKind::Coop(CoopCfg {
                workers: self.workers,
                sched_seed: self.seed,
            }),
            schedule: SchedulePolicy::Replay(Arc::clone(&script)),
            ..WorldCfg::default()
        };
        let dir = self.scratch_dir();
        let _ = std::fs::remove_dir_all(&dir);
        let mcfg = ManaConfig {
            drain: self.drain,
            ckpt_dir: dir.clone(),
            deadlock_timeout: Some(Duration::from_secs(20)),
            trace: Some(sink.clone()),
            ..ManaConfig::default()
        };
        let rt = ManaRuntime::new(self.ranks, mcfg).with_world_cfg(wc);
        let result = self.launch(&rt);
        let _ = std::fs::remove_dir_all(&dir);
        self.judge(choices, result, sink, &script)
    }

    /// The same workload under the kernel-scheduled thread engine — the
    /// cross-engine leg of the fixture-replay equivalence test.
    pub fn run_thread_reference(&self) -> ScheduleRun {
        let sink = obs::TraceSink::wall(self.ranks, 16 * 1024);
        let wc = WorldCfg {
            watchdog: Some(Duration::from_secs(60)),
            engine: EngineKind::Thread,
            ..WorldCfg::default()
        };
        let dir = self.scratch_dir();
        let _ = std::fs::remove_dir_all(&dir);
        let mcfg = ManaConfig {
            drain: self.drain,
            ckpt_dir: dir.clone(),
            deadlock_timeout: Some(Duration::from_secs(20)),
            trace: Some(sink.clone()),
            ..ManaConfig::default()
        };
        let rt = ManaRuntime::new(self.ranks, mcfg).with_world_cfg(wc);
        let result = self.launch(&rt);
        let _ = std::fs::remove_dir_all(&dir);
        // The thread engine never consults the schedule policy, so judge
        // against an empty script: decision log and divergence stay empty.
        self.judge(&[], result, &sink, &ScheduleScript::new(Vec::new()))
    }

    fn judge(
        &self,
        scripted: &[u32],
        result: Result<RunReport<WlValue>, String>,
        sink: &Arc<obs::TraceSink>,
        script: &ScheduleScript,
    ) -> ScheduleRun {
        let mut error = None;
        let mut rounds = 0;
        let mut invariant = Vec::new();
        match result {
            Err(e) => error = Some(format!("run: {e}")),
            Ok(rep) => {
                rounds = rep.coord.rounds.len();
                invariant = rep
                    .rank_stats
                    .iter()
                    .map(|s| s.schedule_invariant().to_vec())
                    .collect();
                if !rep.all_finished() {
                    error = Some(format!(
                        "protocol: not all ranks finished: {:?}",
                        rep.outcomes
                    ));
                } else if rounds != 1 {
                    error = Some(format!(
                        "protocol: expected exactly 1 committed checkpoint round, got {rounds}"
                    ));
                } else if rep.values() != self.expected {
                    error = Some("transparency: results diverged from native reference".into());
                }
            }
        }
        let det_rings = case_token_rings(sink, self.ranks);
        let fingerprint = hash_rings(&interleaving_rings(sink, self.ranks));
        let equiv_key = {
            let mut h = Fnv::new();
            for (actor, ring) in &det_rings {
                h.write_i64(*actor as i64);
                for t in ring {
                    h.write_bytes(t.as_bytes());
                }
            }
            for rank in &invariant {
                for (name, v) in rank {
                    h.write_bytes(name.as_bytes());
                    h.write_u64(*v);
                }
            }
            h.finish()
        };
        let mut run = ScheduleRun {
            scripted: scripted.to_vec(),
            taken: script.recorded_choices(),
            decisions: script.recorded(),
            divergence: script.divergence(),
            det_rings,
            invariant,
            fingerprint,
            equiv_key,
            rounds,
            error,
        };
        if run.error.is_none() {
            if let Some(oracle) = &self.oracle {
                if let Err(e) = oracle(&run) {
                    run.error = Some(format!("oracle: {e}"));
                }
            }
        }
        run
    }
}

// ---- one executed schedule --------------------------------------------------

/// Everything one executed schedule produced.
#[derive(Debug, Clone)]
pub struct ScheduleRun {
    /// The choice prefix this run was scripted with.
    pub scripted: Vec<u32>,
    /// The full choice vector the run actually took (scripted prefix plus
    /// seeded completion) — itself a complete replayable schedule.
    pub taken: Vec<u32>,
    /// The full decision log: ready set and chosen rank per decision.
    pub decisions: Vec<SchedDecision>,
    /// First script divergence, if the scripted prefix could not be
    /// followed (an out-of-range choice).
    pub divergence: Option<ScheduleDivergence>,
    /// Determinism-token rings (schedule-invariant projection) — the
    /// cross-run/cross-engine comparison key.
    pub det_rings: Vec<(i32, Vec<String>)>,
    /// Per-rank schedule-invariant stats totals.
    pub invariant: Vec<Vec<(&'static str, u64)>>,
    /// Hash of the *full* trace rings — the interleaving identity.
    /// Distinct fingerprints ⇒ observably different interleavings.
    pub fingerprint: u64,
    /// Hash of `det_rings` + `invariant` — the equivalence-class key the
    /// pruner deduplicates on.
    pub equiv_key: u64,
    /// Checkpoint rounds committed.
    pub rounds: usize,
    /// What went wrong, if anything (stage-prefixed).
    pub error: Option<String>,
}

impl ScheduleRun {
    /// Did the oracle stack reject this schedule?
    pub fn failed(&self) -> bool {
        self.error.is_some()
    }
}

/// Project one trace event to its interleaving token. Unlike
/// [`crate::determinism_token`] — which *excludes* everything that
/// legitimately varies with scheduling — this keeps the schedule-sensitive
/// payload (net traffic order, drain sweeps and captures, intent landing
/// positions) and drops only wall-clock noise (timestamps, per-stage store
/// timings) and the global `seq` counter (an artifact of ring merge
/// order). Two runs with equal token rings made the same observable moves
/// in the same per-actor order.
pub fn interleaving_token(ev: &obs::TraceEvent) -> String {
    use obs::EventKind;
    let mut s = format!("{}:{}", ev.round, ev.kind.name());
    match &ev.kind {
        EventKind::Begin(p) | EventKind::End(p) => {
            s.push_str(&format!(":{}", p.name()));
            if let obs::Phase::Drain { sweep } = p {
                s.push_str(&format!(":{sweep}"));
            }
        }
        EventKind::BarrierArrive { gid, coll_seq } => s.push_str(&format!(":{gid}:{coll_seq}")),
        EventKind::StoreAttempt { attempt, ok, .. } => s.push_str(&format!(":{attempt}:{ok}")),
        EventKind::StoreWrite {
            bytes,
            retries,
            crc,
        } => s.push_str(&format!(":{bytes}:{retries}:{crc}")),
        EventKind::StoreFault { fault } => s.push_str(&format!(":{}", fault.name())),
        EventKind::NetSend { dst, bytes, user } => s.push_str(&format!(":{dst}:{bytes}:{user}")),
        EventKind::NetMatch { src, bytes } => s.push_str(&format!(":{src}:{bytes}")),
        EventKind::NetHold { src, reorder } => s.push_str(&format!(":{src}:{reorder}")),
        EventKind::DrainCapture { src, bytes } => s.push_str(&format!(":{src}:{bytes}")),
        EventKind::DrainSchedule {
            order,
            edges,
            cyclic,
        } => s.push_str(&format!(":{order}:{edges}:{cyclic}")),
        EventKind::FaultFired { fault } => s.push_str(&format!(":{}", fault.name())),
        EventKind::RestartSkip { gen, code } => s.push_str(&format!(":{gen}:{}", code.name())),
        EventKind::JournalAppend {
            epoch, step, rank, ..
        } => s.push_str(&format!(":{epoch}:{}:{rank}", step.name())),
    }
    s
}

/// Every actor's full interleaving-token sequence, coordinator first.
pub fn interleaving_rings(sink: &obs::TraceSink, ranks: usize) -> Vec<(i32, Vec<String>)> {
    std::iter::once(obs::COORD_ACTOR)
        .chain(0..ranks as i32)
        .map(|actor| {
            (
                actor,
                sink.ring_events(actor)
                    .iter()
                    .map(interleaving_token)
                    .collect(),
            )
        })
        .collect()
}

/// FNV-1a over explicitly-fed bytes: a stable, dependency-free hash for
/// fingerprints and equivalence keys (unlike `DefaultHasher`, its value is
/// pinned by this code, not by the standard library's hasher choice).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write_bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= x as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // Separate fields so ("ab","c") and ("a","bc") hash apart.
        self.0 ^= 0xFF;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }
    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }
    fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

fn hash_rings(rings: &[(i32, Vec<String>)]) -> u64 {
    let mut h = Fnv::new();
    for (actor, ring) in rings {
        h.write_i64(*actor as i64);
        for t in ring {
            h.write_bytes(t.as_bytes());
        }
    }
    h.finish()
}

/// The sterile-context key: a deviation is `(ready set, chosen rank)`;
/// once one such deviation lands on an already-seen fingerprint, trying
/// the same choice from the same enabled set elsewhere is deprioritized.
fn sterile_key(ready: &[usize], chosen: usize) -> u64 {
    let mut sorted = ready.to_vec();
    sorted.sort_unstable();
    let mut h = Fnv::new();
    for r in sorted {
        h.write_u64(r as u64);
    }
    h.write_u64(0xDEAD_0000 ^ chosen as u64);
    h.finish()
}

// ---- minimization -----------------------------------------------------------

/// Delta-debugging (ddmin) minimization of a failing choice vector,
/// followed by prefix truncation. `still_fails` must hold for the input;
/// the result still fails and is prefix-minimal — dropping its last
/// choice (if any) passes.
///
/// Pure in the predicate: unit tests drive it with synthetic predicates,
/// the explorer drives it with real schedule executions.
pub fn minimize_choices(choices: &[u32], mut still_fails: impl FnMut(&[u32]) -> bool) -> Vec<u32> {
    let mut cur = choices.to_vec();
    // ddmin: try removing chunks at increasing granularity.
    let mut n = 2usize;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(n);
        let mut reduced = None;
        for start in (0..cur.len()).step_by(chunk) {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            if still_fails(&candidate) {
                reduced = Some(candidate);
                break;
            }
        }
        match reduced {
            Some(c) => {
                cur = c;
                n = 2.max(n.saturating_sub(1));
            }
            None if n < cur.len() => n = (n * 2).min(cur.len()),
            None => break,
        }
    }
    // Prefix truncation: the tail may be dead weight ddmin's chunking
    // missed; pop until dropping the last choice would pass.
    while !cur.is_empty() {
        let shorter = &cur[..cur.len() - 1];
        if still_fails(shorter) {
            cur.pop();
        } else {
            break;
        }
    }
    cur
}

/// A minimized failing schedule.
#[derive(Debug, Clone)]
pub struct MinimizedSchedule {
    /// The minimal failing choice vector.
    pub choices: Vec<u32>,
    /// Error of the minimal reproduction.
    pub error: String,
    /// Schedule executions the minimizer spent.
    pub tests: u64,
}

/// Minimize a failing choice vector against a live target, capped at
/// `max_tests` schedule executions (each test is a full run).
pub fn minimize_failing_schedule(
    target: &ExploreTarget,
    choices: &[u32],
    max_tests: u64,
) -> MinimizedSchedule {
    let mut tests = 1u64;
    let mut last_error = match target.run_schedule(choices).error {
        Some(e) => e,
        None => {
            // Not reproducible — return as-is rather than minimize noise.
            return MinimizedSchedule {
                choices: choices.to_vec(),
                error: "minimizer: failure did not reproduce".into(),
                tests,
            };
        }
    };
    let minimal = minimize_choices(choices, |c| {
        if tests >= max_tests {
            return false; // out of budget: treat as passing, stop shrinking
        }
        tests += 1;
        let r = target.run_schedule(c);
        if let Some(e) = &r.error {
            last_error = e.clone();
        }
        r.failed()
    });
    MinimizedSchedule {
        choices: minimal,
        error: last_error,
        tests,
    }
}

// ---- the explorer -----------------------------------------------------------

/// Search budget and shape.
#[derive(Debug, Clone)]
pub struct ExploreCfg {
    /// Wall-clock budget for the search loop.
    pub budget: Duration,
    /// Hard cap on schedules executed (0 = budget-only).
    pub max_schedules: u64,
    /// Deepest decision index deviations are generated at. Checkpoint
    /// windows of the explore workloads close well within this many
    /// decisions; deeper deviations mostly permute the epilogue.
    pub max_depth: usize,
    /// Stop at the first failing schedule (CI wants the artifact fast);
    /// `false` keeps hunting and collects every distinct failure.
    pub stop_on_first_failure: bool,
    /// Minimize failing choice vectors before reporting.
    pub minimize: bool,
    /// Cap on minimizer executions per failure.
    pub minimize_tests: u64,
    /// Enable the sterile-context heuristic. It multiplies throughput on
    /// redundant schedule spaces but can starve a small search — a context
    /// is poisoned globally after one equivalent outcome anywhere.
    pub sterile_pruning: bool,
}

impl Default for ExploreCfg {
    fn default() -> Self {
        ExploreCfg {
            budget: Duration::from_secs(10),
            max_schedules: 0,
            max_depth: 24,
            stop_on_first_failure: true,
            minimize: true,
            minimize_tests: 200,
            sterile_pruning: true,
        }
    }
}

/// Pruning counters — the honesty ledger of a non-exhaustive search.
#[derive(Debug, Clone, Copy, Default)]
pub struct PruneStats {
    /// Deviation candidates enumerated from executed schedules.
    pub candidates: u64,
    /// Candidates dropped: exact prefix already queued or executed.
    pub pruned_duplicate: u64,
    /// Candidates dropped: `(ready set, chosen rank)` context previously
    /// led to an already-seen fingerprint.
    pub pruned_sterile: u64,
    /// Candidates dropped: frontier at capacity.
    pub frontier_dropped: u64,
    /// Executed schedules whose fingerprint was already visited (run but
    /// not expanded).
    pub equivalent_runs: u64,
}

impl PruneStats {
    /// Fraction of enumerated candidates that were pruned away.
    pub fn ratio(&self) -> f64 {
        if self.candidates == 0 {
            return 0.0;
        }
        (self.pruned_duplicate + self.pruned_sterile + self.frontier_dropped) as f64
            / self.candidates as f64
    }
}

/// One failing schedule the explorer found.
#[derive(Debug, Clone)]
pub struct ExploreFailure {
    /// The failing scripted choice prefix.
    pub choices: Vec<u32>,
    /// What went wrong.
    pub error: String,
    /// The minimized repro, when minimization ran.
    pub minimized: Option<MinimizedSchedule>,
}

/// What a search visited and found.
#[derive(Debug)]
pub struct ExploreReport {
    /// Seed the target and search randomness derive from.
    pub seed: u64,
    /// World size.
    pub ranks: usize,
    /// Coop worker tokens.
    pub workers: usize,
    /// Application kernel.
    pub workload: Workload,
    /// Drain mode.
    pub drain: DrainMode,
    /// Schedules executed.
    pub schedules_run: u64,
    /// Distinct interleaving fingerprints visited.
    pub unique_interleavings: u64,
    /// Distinct schedule-invariant equivalence classes visited (should
    /// stay 1 while no bug is found — that *is* the determinism claim).
    pub unique_equiv_classes: u64,
    /// Replays that could not follow their scripted prefix.
    pub replay_divergences: u64,
    /// Longest decision log seen.
    pub max_decisions_seen: usize,
    /// Pruning ledger.
    pub prune: PruneStats,
    /// Failures found (at most one when `stop_on_first_failure`).
    pub failures: Vec<ExploreFailure>,
    /// Non-empty scripted prefixes whose runs landed on a fingerprint not
    /// seen before (first [`CORPUS_CAP`], in discovery order) — the raw
    /// material of the adversarial-schedule regression corpus.
    pub distinct_prefixes: Vec<Vec<u32>>,
    /// Search wall time.
    pub elapsed: Duration,
}

impl ExploreReport {
    /// Schedules executed per wall second.
    pub fn schedules_per_sec(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.schedules_run as f64 / s
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "explore seed={} {}x{} {}/{}: {} schedules ({:.1}/s), {} unique interleavings, \
             {} equiv classes, prune ratio {:.2}, {} failure(s)",
            self.seed,
            self.ranks,
            self.workers,
            workload_name(self.workload),
            drain_name(self.drain),
            self.schedules_run,
            self.schedules_per_sec(),
            self.unique_interleavings,
            self.unique_equiv_classes,
            self.prune.ratio(),
            self.failures.len()
        )
    }

    /// The JSON artifact (hand-rolled like every artifact in this repo).
    pub fn to_json(&self, target: &ExploreTarget) -> String {
        let mut bugs = String::from("[");
        for (i, f) in self.failures.iter().enumerate() {
            if i > 0 {
                bugs.push(',');
            }
            let (min_hex, min_tests) = match &f.minimized {
                Some(m) => (encode_choices(&m.choices), m.tests),
                None => (String::new(), 0),
            };
            let repro_choices = f
                .minimized
                .as_ref()
                .map(|m| m.choices.clone())
                .unwrap_or_else(|| f.choices.clone());
            bugs.push_str(&format!(
                "{{\"error\":\"{}\",\"choices\":\"{}\",\"minimized\":\"{}\",\
                 \"minimize_tests\":{},\"repro\":\"{}\"}}",
                json_escape(&f.error),
                encode_choices(&f.choices),
                min_hex,
                min_tests,
                json_escape(&target.repro_command(&repro_choices)),
            ));
        }
        bugs.push(']');
        format!(
            "{{\n  \"experiment\": \"explore\",\n  \"seed\": {},\n  \"ranks\": {},\n  \
             \"workers\": {},\n  \"workload\": \"{}\",\n  \"drain\": \"{}\",\n  \
             \"elapsed_s\": {:.3},\n  \"schedules_run\": {},\n  \"schedules_per_sec\": {:.2},\n  \
             \"unique_interleavings\": {},\n  \"unique_equiv_classes\": {},\n  \
             \"replay_divergences\": {},\n  \"max_decisions_seen\": {},\n  \
             \"pruning\": {{\"candidates\": {}, \"pruned_duplicate\": {}, \
             \"pruned_sterile\": {}, \"frontier_dropped\": {}, \"equivalent_runs\": {}, \
             \"ratio\": {:.4}}},\n  \"bugs_found\": {},\n  \"bugs\": {}\n}}\n",
            self.seed,
            self.ranks,
            self.workers,
            workload_name(self.workload),
            drain_name(self.drain),
            self.elapsed.as_secs_f64(),
            self.schedules_run,
            self.schedules_per_sec(),
            self.unique_interleavings,
            self.unique_equiv_classes,
            self.replay_divergences,
            self.max_decisions_seen,
            self.prune.candidates,
            self.prune.pruned_duplicate,
            self.prune.pruned_sterile,
            self.prune.frontier_dropped,
            self.prune.equivalent_runs,
            self.prune.ratio(),
            self.failures.len(),
            bugs,
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

const MAX_FRONTIER: usize = 8192;

/// Cap on [`ExploreReport::distinct_prefixes`].
pub const CORPUS_CAP: usize = 64;

/// Bounded random-walk search over choice-vector prefixes.
///
/// Starts from the empty prefix (the pure seeded schedule), executes a
/// random frontier prefix each step, folds the run into the fingerprint /
/// equivalence-class sets, and expands every untried ready-queue index at
/// every decision past the scripted prefix (up to `max_depth`) into new
/// frontier prefixes. See the module docs for the pruning rules.
pub fn explore(target: &ExploreTarget, cfg: &ExploreCfg) -> ExploreReport {
    let start = Instant::now();
    let mut rng = splitmix64(target.seed ^ 0xE590_12D7_33AA_41C6);
    let mut frontier: Vec<Vec<u32>> = vec![Vec::new()];
    let mut seen_prefix: HashSet<Vec<u32>> = HashSet::new();
    seen_prefix.insert(Vec::new());
    let mut seen_fp: HashSet<u64> = HashSet::new();
    let mut seen_equiv: HashSet<u64> = HashSet::new();
    let mut sterile: HashSet<u64> = HashSet::new();
    let mut prune = PruneStats::default();
    let mut failures: Vec<ExploreFailure> = Vec::new();
    let mut seen_errors: HashSet<String> = HashSet::new();
    let mut schedules_run = 0u64;
    let mut replay_divergences = 0u64;
    let mut max_decisions_seen = 0usize;
    let mut distinct_prefixes: Vec<Vec<u32>> = Vec::new();

    while !frontier.is_empty()
        && start.elapsed() < cfg.budget
        && (cfg.max_schedules == 0 || schedules_run < cfg.max_schedules)
    {
        rng = splitmix64(rng);
        let pick = (rng % frontier.len() as u64) as usize;
        let prefix = frontier.swap_remove(pick);
        let run = target.run_schedule(&prefix);
        schedules_run += 1;
        max_decisions_seen = max_decisions_seen.max(run.decisions.len());
        if run.divergence.is_some() {
            replay_divergences += 1;
        }
        if let Some(err) = &run.error {
            if seen_errors.insert(err.clone()) {
                let minimized = if cfg.minimize {
                    Some(minimize_failing_schedule(
                        target,
                        &run.scripted,
                        cfg.minimize_tests,
                    ))
                } else {
                    None
                };
                failures.push(ExploreFailure {
                    choices: run.scripted.clone(),
                    error: err.clone(),
                    minimized,
                });
            }
            if cfg.stop_on_first_failure {
                break;
            }
            continue; // don't expand failing schedules
        }
        seen_equiv.insert(run.equiv_key);
        if seen_fp.insert(run.fingerprint) {
            if !prefix.is_empty() && distinct_prefixes.len() < CORPUS_CAP {
                distinct_prefixes.push(prefix.clone());
            }
        } else {
            prune.equivalent_runs += 1;
            // The deviation that produced this run taught us nothing new:
            // remember its context and deprioritize it elsewhere.
            if let Some(last) = prefix.len().checked_sub(1) {
                if let Some(d) = run.decisions.get(last) {
                    sterile.insert(sterile_key(&d.ready, d.chosen_rank));
                }
            }
            continue; // an already-seen interleaving expands to already-seen children
        }
        // Expand: every untried choice at every decision past the prefix.
        let from = prefix.len();
        let to = run.decisions.len().min(cfg.max_depth);
        for k in from..to {
            let d = &run.decisions[k];
            for alt in 0..d.ready.len() as u32 {
                if alt == d.chosen_idx {
                    continue;
                }
                prune.candidates += 1;
                if cfg.sterile_pruning
                    && sterile.contains(&sterile_key(&d.ready, d.ready[alt as usize]))
                {
                    prune.pruned_sterile += 1;
                    continue;
                }
                let mut child = Vec::with_capacity(k + 1);
                child.extend_from_slice(&run.taken[..k]);
                child.push(alt);
                if seen_prefix.contains(&child) {
                    prune.pruned_duplicate += 1;
                    continue;
                }
                if frontier.len() >= MAX_FRONTIER {
                    prune.frontier_dropped += 1;
                    continue;
                }
                seen_prefix.insert(child.clone());
                frontier.push(child);
            }
        }
    }

    ExploreReport {
        seed: target.seed,
        ranks: target.ranks,
        workers: target.workers,
        workload: target.workload,
        drain: target.drain,
        schedules_run,
        unique_interleavings: seen_fp.len() as u64,
        unique_equiv_classes: seen_equiv.len() as u64,
        replay_divergences,
        max_decisions_seen,
        prune,
        failures,
        distinct_prefixes,
        elapsed: start.elapsed(),
    }
}

// ---- fixture corpus ---------------------------------------------------------

/// One line of the adversarial-schedule corpus:
/// `seed ranks workers workload drain choices_hex` (`#` comments, blank
/// lines skipped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleFixture {
    /// Scheduler seed.
    pub seed: u64,
    /// World size.
    pub ranks: usize,
    /// Coop worker tokens.
    pub workers: usize,
    /// Application kernel.
    pub workload: Workload,
    /// Drain mode.
    pub drain: DrainMode,
    /// The adversarial choice prefix.
    pub choices: Vec<u32>,
}

impl ScheduleFixture {
    /// Parse one corpus line; `Ok(None)` for comments and blank lines.
    pub fn parse(line: &str) -> Result<Option<ScheduleFixture>, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() != 6 {
            return Err(format!("want 6 fields, got {}: {line:?}", f.len()));
        }
        Ok(Some(ScheduleFixture {
            seed: f[0].parse().map_err(|e| format!("seed: {e}"))?,
            ranks: f[1].parse().map_err(|e| format!("ranks: {e}"))?,
            workers: f[2].parse().map_err(|e| format!("workers: {e}"))?,
            workload: parse_workload(f[3])?,
            drain: parse_drain(f[4])?,
            choices: decode_choices(f[5])?,
        }))
    }

    /// Render as a corpus line.
    pub fn to_line(&self) -> String {
        format!(
            "{} {} {} {} {} {}",
            self.seed,
            self.ranks,
            self.workers,
            workload_name(self.workload),
            drain_name(self.drain),
            encode_choices(&self.choices)
        )
    }

    /// Build the live target this fixture replays against.
    pub fn target(&self) -> Result<ExploreTarget, String> {
        ExploreTarget::new(
            self.seed,
            self.ranks,
            self.workers,
            self.workload,
            self.drain,
        )
    }
}

/// Load a corpus file.
pub fn load_fixtures(path: &std::path::Path) -> Result<Vec<ScheduleFixture>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if let Some(fx) =
            ScheduleFixture::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?
        {
            out.push(fx);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choice_codec_round_trips() {
        for v in [vec![], vec![0], vec![1, 2, 3], vec![255, 0, 17]] {
            assert_eq!(decode_choices(&encode_choices(&v)).unwrap(), v);
        }
        assert!(decode_choices("abc").is_err()); // odd length
        assert!(decode_choices("zz").is_err()); // bad digit
        assert_eq!(decode_choices("  0102 ").unwrap(), vec![1, 2]);
    }

    #[test]
    fn fixture_line_round_trips() {
        let fx = ScheduleFixture {
            seed: 42,
            ranks: 4,
            workers: 1,
            workload: Workload::Gromacs,
            drain: DrainMode::Coordinator,
            choices: vec![3, 0, 2],
        };
        let line = fx.to_line();
        assert_eq!(ScheduleFixture::parse(&line).unwrap().unwrap(), fx);
        assert_eq!(ScheduleFixture::parse("# comment").unwrap(), None);
        assert_eq!(ScheduleFixture::parse("   ").unwrap(), None);
        assert!(ScheduleFixture::parse("1 2 3").is_err());
        assert!(ScheduleFixture::parse("1 2 3 vasp alltoall 00").is_err());
    }

    #[test]
    fn minimize_is_prefix_minimal_on_synthetic_predicates() {
        // Fails iff the vector contains 7 followed (not necessarily
        // adjacently) by 3 — minimal failing vector is [7, 3].
        let pred = |c: &[u32]| {
            let p7 = c.iter().position(|&x| x == 7);
            match p7 {
                Some(i) => c[i..].contains(&3),
                None => false,
            }
        };
        let noisy = vec![1, 7, 9, 9, 3, 4, 5];
        assert!(pred(&noisy));
        let min = minimize_choices(&noisy, |c| pred(c));
        assert_eq!(min, vec![7, 3]);
        assert!(pred(&min));
        assert!(!pred(&min[..min.len() - 1])); // prefix-minimal

        // Fails iff length >= 4: minimization keeps some 4 elements and
        // dropping the last passes.
        let min2 = minimize_choices(&[9, 9, 9, 9, 9, 9, 9], |c| c.len() >= 4);
        assert_eq!(min2.len(), 4);

        // Unshrinkable single-element failure survives.
        let min3 = minimize_choices(&[5], |c| c.contains(&5));
        assert_eq!(min3, vec![5]);
    }

    #[test]
    fn prune_ratio_arithmetic() {
        let mut p = PruneStats::default();
        assert_eq!(p.ratio(), 0.0);
        p.candidates = 10;
        p.pruned_duplicate = 2;
        p.pruned_sterile = 3;
        assert!((p.ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fnv_separates_field_boundaries() {
        let mut a = Fnv::new();
        a.write_bytes(b"ab");
        a.write_bytes(b"c");
        let mut b = Fnv::new();
        b.write_bytes(b"a");
        b.write_bytes(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn sterile_key_ignores_ready_order() {
        assert_eq!(sterile_key(&[2, 0, 3], 3), sterile_key(&[0, 2, 3], 3));
        assert_ne!(sterile_key(&[0, 2, 3], 3), sterile_key(&[0, 2, 3], 2));
    }

    #[test]
    fn json_escape_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
