//! Schedule-space exploration suite: the `CHAOS_SCHEDULE` replay hook,
//! the Record→Replay round trip, the exploration coverage bar, and the
//! injected-oracle find-and-minimize smoke test.

use chaos::explore::{
    encode_choices, env_schedule, explore, ExploreCfg, ExploreTarget, Oracle, ScheduleRun,
};
use chaos::{env_seed, Workload};
use mana_core::DrainMode;
use std::sync::Arc;
use std::time::Duration;

/// Replay one explicit schedule:
///
/// ```text
/// CHAOS_SEED=<seed> CHAOS_SCHEDULE=<hex choices> \
///   cargo test -p chaos --test explore_suite schedule_replay -- --nocapture
/// ```
///
/// The target shape derives from the seed; `CHAOS_EXPLORE_RANKS` /
/// `CHAOS_EXPLORE_WORKERS` / `CHAOS_EXPLORE_WORKLOAD` /
/// `CHAOS_EXPLORE_DRAIN` override it (the explorer's repro lines set all
/// four). Without `CHAOS_SEED` this replays one fixed schedule as a smoke
/// test so the hook itself stays exercised.
#[test]
fn schedule_replay() {
    let (seed, choices) = match env_seed() {
        Some(s) => (s, env_schedule().unwrap_or_default()),
        None => (0xD0_5EED, vec![2, 0, 1]),
    };
    let target = ExploreTarget::from_env_or_seed(seed).expect("target construction");
    let run = target.run_schedule(&choices);
    eprintln!(
        "schedule_replay seed={} choices={} -> {} decisions, fingerprint {:016x}",
        seed,
        encode_choices(&choices),
        run.decisions.len(),
        run.fingerprint,
    );
    if let Some(d) = &run.divergence {
        eprintln!(
            "  note: replay diverged at decision {} (choice {} vs ready set of {})",
            d.index, d.choice, d.ready_len
        );
    }
    if let Some(e) = &run.error {
        panic!(
            "schedule failed: {e}\n  repro: {}",
            target.repro_command(&choices)
        );
    }
}

/// Satellite: choices recorded from a seeded run replay to byte-identical
/// trace-token rings across 6 seeds × worker counts 1–3.
///
/// The recording run *is* the seeded schedule (an empty script defers
/// every pick to the seeded policy while recording the full decision
/// log); the replay drives the recorded choice vector back through the
/// scheduler. The determinism-token rings and the schedule-invariant
/// stats must come back byte-identical at every worker count; at
/// workers=1 the decision-level choice vector itself must survive the
/// round trip (kernel racing between worker threads makes decision logs
/// legitimately differ at workers ≥ 2).
#[test]
fn record_replay_round_trip() {
    let seeds = [
        0x5EED_0001u64,
        0x5EED_0002,
        0x5EED_0003,
        0xBADC_0FFE,
        0x1234_5678,
        0xFEED_FACE,
    ];
    for (i, &seed) in seeds.iter().enumerate() {
        let ranks = 2 + i % 3;
        let workload = if i % 2 == 0 {
            Workload::Gromacs
        } else {
            Workload::Cg
        };
        let drain = if i % 4 < 2 {
            DrainMode::Alltoall
        } else {
            DrainMode::Coordinator
        };
        for workers in 1..=3usize {
            let target = ExploreTarget::new(seed, ranks, workers, workload, drain)
                .unwrap_or_else(|e| panic!("target seed={seed} workers={workers}: {e}"));
            let rec = target.run_schedule(&[]);
            assert!(
                rec.error.is_none(),
                "seeded run failed (seed={seed} ranks={ranks} workers={workers}): {:?}",
                rec.error
            );
            assert!(
                !rec.taken.is_empty(),
                "seeded run recorded no decisions (seed={seed} workers={workers})"
            );
            let rep = target.run_schedule(&rec.taken);
            assert!(
                rep.error.is_none(),
                "replay failed (seed={seed} ranks={ranks} workers={workers}): {:?}\n  repro: {}",
                rep.error,
                target.repro_command(&rec.taken)
            );
            assert_eq!(
                rec.det_rings,
                rep.det_rings,
                "trace-token rings diverged across record→replay \
                 (seed={seed} ranks={ranks} workers={workers})\n  repro: {}",
                target.repro_command(&rec.taken)
            );
            assert_eq!(
                rec.invariant, rep.invariant,
                "schedule-invariant stats diverged across record→replay \
                 (seed={seed} ranks={ranks} workers={workers})"
            );
        }
    }
}

/// Acceptance bar: ≥ 100 distinct interleavings (distinct full token
/// rings) of a 4-rank checkpoint round within a 10 s budget at workers=1,
/// with the pruning ratio reported.
#[test]
fn explorer_visits_100_interleavings_in_10s() {
    let target =
        ExploreTarget::new(20260807, 4, 1, Workload::Gromacs, DrainMode::Alltoall).expect("target");
    let cfg = ExploreCfg {
        budget: Duration::from_secs(10),
        ..ExploreCfg::default()
    };
    let report = explore(&target, &cfg);
    eprintln!("{}", report.summary());
    assert!(
        report.failures.is_empty(),
        "exploration found real failures: {:?}",
        report.failures
    );
    assert!(
        report.unique_interleavings >= 100,
        "visited only {} distinct interleavings in {:?} ({} schedules)",
        report.unique_interleavings,
        report.elapsed,
        report.schedules_run
    );
    assert_eq!(
        report.unique_equiv_classes, 1,
        "schedule-invariant outcome split into {} equivalence classes",
        report.unique_equiv_classes
    );
    assert!(report.prune.candidates > 0);
    let ratio = report.prune.ratio();
    assert!((0.0..=1.0).contains(&ratio), "pruning ratio {ratio}");
}

/// Acceptance bar: an injected ordering-sensitive assertion is found by
/// the search and minimized to a ≤ 8-choice repro that is prefix-minimal.
#[test]
fn injected_oracle_found_and_minimized() {
    // The "bug": the first two scheduling decisions grant ranks (3, 2) in
    // that order. Reachable only by steering both decisions, so the
    // search must chain a second deviation off the first.
    let oracle: Oracle = Arc::new(|run: &ScheduleRun| {
        let first_two: Vec<usize> = run
            .decisions
            .iter()
            .take(2)
            .map(|d| d.chosen_rank)
            .collect();
        if first_two == [3, 2] {
            Err("injected: ranks (3,2) granted first".into())
        } else {
            Ok(())
        }
    });
    let target = ExploreTarget::new(0xAB_5E11, 4, 1, Workload::Gromacs, DrainMode::Alltoall)
        .expect("target")
        .with_oracle(oracle);

    // The pure seeded schedule must pass — otherwise nothing is "hunted".
    let baseline = target.run_schedule(&[]);
    assert!(
        baseline.error.is_none(),
        "baseline seeded schedule already trips the oracle: {:?}",
        baseline.error
    );

    // An idle machine finds this in well under a second, but the suite can
    // run heavily oversubscribed (the whole workspace testing in parallel
    // on a small box), starving a wall-clock budget of schedules. Retry
    // with the budget doubled until the search either finds the bug or has
    // run enough schedules that coming up empty is meaningful.
    let mut budget = Duration::from_secs(60);
    let report = loop {
        let cfg = ExploreCfg {
            budget,
            sterile_pruning: false, // don't let the heuristic starve a tiny search
            ..ExploreCfg::default()
        };
        let report = explore(&target, &cfg);
        eprintln!("{}", report.summary());
        if !report.failures.is_empty() || report.schedules_run >= 300 {
            break report;
        }
        budget *= 2;
    };
    assert_eq!(
        report.failures.len(),
        1,
        "explorer did not find the injected bug in {} schedules / {:?}",
        report.schedules_run,
        report.elapsed
    );
    let failure = &report.failures[0];
    assert!(failure.error.contains("injected"), "{}", failure.error);

    let min = failure.minimized.as_ref().expect("minimizer ran").clone();
    eprintln!(
        "minimized to {} choice(s) in {} tests: {}",
        min.choices.len(),
        min.tests,
        encode_choices(&min.choices)
    );
    assert!(
        min.choices.len() <= 8,
        "minimized repro has {} choices: {}",
        min.choices.len(),
        encode_choices(&min.choices)
    );

    // Shrinker contract: the minimized vector still fails…
    let replay = target.run_schedule(&min.choices);
    assert!(
        replay.failed(),
        "minimized choice vector no longer fails: {}",
        encode_choices(&min.choices)
    );
    assert!(replay.error.as_deref().unwrap_or("").contains("injected"));

    // …and is prefix-minimal: dropping the last choice passes.
    assert!(
        !min.choices.is_empty(),
        "empty vector cannot trip the oracle"
    );
    let shorter = &min.choices[..min.choices.len() - 1];
    let pass = target.run_schedule(shorter);
    assert!(
        pass.error.is_none(),
        "dropping the last choice still fails — not prefix-minimal: {:?}",
        pass.error
    );
}
