//! Satellite check: for a fixed chaos seed the flight recorder captures
//! the *same checkpoint-window event sequence* on every run.
//!
//! Two things legitimately vary between runs of the same seed and are
//! therefore excluded from the comparison:
//!
//! - *where* the intent lands in a rank's user-traffic stream — a
//!   non-trigger rank notices the checkpoint request at its next wrapper
//!   call, so the surrounding `net_*` / collective events shift with
//!   scheduling (wall timestamps and global sequence numbers shift too);
//! - the drain window (sweep count — possibly zero — and which in-flight
//!   messages get captured) and with it the exact image size, which
//!   embeds the captured bytes; both depend on delivery timing.
//!
//! Everything else inside the window — phase spans, store attempts and
//! retries, fault firings, the committed outcome — must be identical,
//! per ring, in program order.

use chaos::{run_case_traced, ChaosCase, Workload};
use mana_core::obs::{self, EventKind, TraceEvent, COORD_ACTOR};
use mana_core::DrainMode;
use mpisim::{FaultPlan, FaultSpec};
use std::sync::Arc;

/// Project one event to its determinism token; `None` drops it from the
/// comparison (user traffic, barrier arrivals).
fn token(ev: &TraceEvent) -> Option<String> {
    match &ev.kind {
        EventKind::Begin(p) | EventKind::End(p) if p.name() == "drain" => None,
        EventKind::DrainCapture { .. } => None,
        EventKind::Begin(p) if p.name() == "emu_collective" || p.name() == "tpc_barrier" => None,
        EventKind::End(p) if p.name() == "emu_collective" || p.name() == "tpc_barrier" => None,
        EventKind::Begin(p) => Some(format!("begin:{}", p.name())),
        EventKind::End(p) => Some(format!("end:{}", p.name())),
        EventKind::StoreAttempt { attempt, ok, .. } => {
            Some(format!("store_attempt:{attempt}:{ok}"))
        }
        EventKind::StoreWrite { retries, .. } => Some(format!("store_write:{retries}")),
        EventKind::StoreFault { fault } => Some(format!("store_fault:{}", fault.name())),
        EventKind::FaultFired { fault } => Some(format!("fault_fired:{}", fault.name())),
        _ => None,
    }
}

/// Ring → token sequence.
fn ring_tokens(events: &[TraceEvent]) -> Vec<String> {
    events.iter().filter_map(token).collect()
}

fn run_once(case: &ChaosCase, plan: &Arc<FaultPlan>) -> Vec<(i32, Vec<String>)> {
    // Generous capacity: an overwrite boundary would itself be
    // timing-dependent and invalidate the comparison.
    let sink = obs::TraceSink::wall(case.ranks, 16384);
    run_case_traced(case, plan.clone(), &sink).expect("quiet-plan case passes");
    assert_eq!(sink.dropped(), 0, "ring overwrote events; raise capacity");
    let mut rings = Vec::new();
    for actor in std::iter::once(COORD_ACTOR).chain(0..case.ranks as i32) {
        rings.push((actor, ring_tokens(&sink.ring_events(actor))));
    }
    rings
}

#[test]
fn fixed_seed_records_identical_checkpoint_sequences() {
    let seed = 0x5EED_0001u64;
    let case = ChaosCase {
        seed,
        ranks: 3,
        workload: Workload::Cg,
        drain: DrainMode::Alltoall,
        restart: false,
    };
    // Quiet except for the checkpoint trigger: delays and reorders only
    // shift timing, but the trigger is what makes the trace interesting.
    let mut spec = FaultSpec::quiet();
    spec.trigger_at_call = Some((1, 12));
    let plan = Arc::new(FaultPlan::new(seed, spec));

    let a = run_once(&case, &plan);
    let b = run_once(&case, &plan);
    for ((actor_a, toks_a), (actor_b, toks_b)) in a.iter().zip(b.iter()) {
        assert_eq!(actor_a, actor_b);
        assert_eq!(
            toks_a, toks_b,
            "actor {actor_a}: checkpoint-window sequence diverged between two runs of seed {seed:#x}"
        );
    }
    // The trace actually covered a checkpoint round: the coordinator and
    // every rank committed, and the trigger rank recorded its firing.
    let coord = &a[0].1;
    assert!(
        coord.contains(&"begin:commit".to_string()),
        "coordinator ring should show a committed round: {coord:?}"
    );
    for (actor, toks) in &a[1..] {
        assert!(
            toks.contains(&"end:commit".to_string()),
            "rank {actor} should have committed: {toks:?}"
        );
    }
    assert!(
        a[2].1.contains(&"fault_fired:trigger".to_string()),
        "trigger rank should record the firing: {:?}",
        a[2].1
    );
}
