//! Satellite check: for a fixed chaos seed the flight recorder captures
//! the *same checkpoint-window event sequence* on every run.
//!
//! The comparison projects each ring through [`chaos::determinism_token`],
//! which documents exactly what may legitimately vary between runs of the
//! same seed (intent landing position, drain window) and is shared with
//! the dual-engine equivalence suite.

use chaos::{case_token_rings, run_case_traced, ChaosCase, Workload};
use mana_core::obs;
use mana_core::DrainMode;
use mpisim::{FaultPlan, FaultSpec};
use std::sync::Arc;

fn run_once(case: &ChaosCase, plan: &Arc<FaultPlan>) -> Vec<(i32, Vec<String>)> {
    // Generous capacity: an overwrite boundary would itself be
    // timing-dependent and invalidate the comparison.
    let sink = obs::TraceSink::wall(case.ranks, 16384);
    run_case_traced(case, plan.clone(), &sink).expect("quiet-plan case passes");
    assert_eq!(sink.dropped(), 0, "ring overwrote events; raise capacity");
    case_token_rings(&sink, case.ranks)
}

#[test]
fn fixed_seed_records_identical_checkpoint_sequences() {
    let seed = 0x5EED_0001u64;
    let case = ChaosCase {
        seed,
        ranks: 3,
        workload: Workload::Cg,
        drain: DrainMode::Alltoall,
        restart: false,
    };
    // Quiet except for the checkpoint trigger: delays and reorders only
    // shift timing, but the trigger is what makes the trace interesting.
    let mut spec = FaultSpec::quiet();
    spec.trigger_at_call = Some((1, 12));
    let plan = Arc::new(FaultPlan::new(seed, spec));

    let a = run_once(&case, &plan);
    let b = run_once(&case, &plan);
    for ((actor_a, toks_a), (actor_b, toks_b)) in a.iter().zip(b.iter()) {
        assert_eq!(actor_a, actor_b);
        assert_eq!(
            toks_a, toks_b,
            "actor {actor_a}: checkpoint-window sequence diverged between two runs of seed {seed:#x}"
        );
    }
    // The trace actually covered a checkpoint round: the coordinator and
    // every rank committed, and the trigger rank recorded its firing.
    let coord = &a[0].1;
    assert!(
        coord.contains(&"begin:commit".to_string()),
        "coordinator ring should show a committed round: {coord:?}"
    );
    for (actor, toks) in &a[1..] {
        assert!(
            toks.contains(&"end:commit".to_string()),
            "rank {actor} should have committed: {toks:?}"
        );
    }
    assert!(
        a[2].1.contains(&"fault_fired:trigger".to_string()),
        "trigger rank should record the firing: {:?}",
        a[2].1
    );
}
