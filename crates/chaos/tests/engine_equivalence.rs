//! Satellite check (pluggable engines): a fixed `(seed, schedule)` pair
//! must behave identically under `ThreadEngine` and `CoopEngine`.
//!
//! For each seed the same full checkpoint-and-restart chaos case runs
//! once per engine, and the suite demands:
//!
//! - identical [`chaos::CaseReport`]s (committed rounds, restart taken);
//! - identical per-rank schedule-invariant `ManaStats` totals (summed
//!   across the checkpoint and restart legs — where the checkpoint lands
//!   in a non-trigger rank's call stream is itself schedule-dependent,
//!   so only the sum is comparable; see
//!   `ManaStats::schedule_invariant`);
//! - identical per-actor `mana2-trace` determinism-token sequences
//!   (modulo timestamps — the same projection the single-engine
//!   determinism suite uses).
//!
//! Result correctness against the fault-free native reference is already
//! asserted inside [`chaos::run_case_engine`] for every leg.

use chaos::{case_token_rings, run_case_engine, ChaosCase, EngineCaseOutcome, Workload};
use mana_core::obs;
use mana_core::DrainMode;
use mpisim::{CoopCfg, EngineKind, FaultPlan, FaultSpec};
use std::sync::Arc;

fn run_under(
    case: &ChaosCase,
    plan: &Arc<FaultPlan>,
    engine: EngineKind,
) -> (EngineCaseOutcome, Vec<(i32, Vec<String>)>) {
    let sink = obs::TraceSink::wall(case.ranks, 16384);
    let out = run_case_engine(case, plan.clone(), &sink, Some(engine)).unwrap_or_else(|f| {
        panic!(
            "seed {:#x} failed under {}: {}",
            case.seed,
            engine.name(),
            f.error
        )
    });
    assert_eq!(sink.dropped(), 0, "ring overwrote events; raise capacity");
    (out, case_token_rings(&sink, case.ranks))
}

fn check_equivalence(case: &ChaosCase, spec: FaultSpec) {
    let seed = case.seed;
    let plan = Arc::new(FaultPlan::new(seed, spec));
    let coop = EngineKind::Coop(CoopCfg {
        workers: 2,
        sched_seed: seed,
    });
    let (out_t, rings_t) = run_under(case, &plan, EngineKind::Thread);
    let (out_c, rings_c) = run_under(case, &plan, coop);

    assert_eq!(
        out_t.report, out_c.report,
        "seed {seed:#x}: engines disagree on rounds/restart"
    );
    assert_eq!(
        out_t.invariant_totals(),
        out_c.invariant_totals(),
        "seed {seed:#x}: schedule-invariant ManaStats diverged between engines"
    );
    for ((actor_t, toks_t), (actor_c, toks_c)) in rings_t.iter().zip(rings_c.iter()) {
        assert_eq!(actor_t, actor_c);
        assert_eq!(
            toks_t, toks_c,
            "seed {seed:#x}, actor {actor_t}: checkpoint-window sequence diverged between engines"
        );
    }
}

/// A quiet plan with only the adversarial checkpoint trigger armed:
/// injected delays would change *timing* identically-seeded under both
/// engines anyway, but the trigger is what opens the checkpoint window.
fn trigger_spec(rank: usize, call: u64) -> FaultSpec {
    let mut spec = FaultSpec::quiet();
    spec.trigger_at_call = Some((rank, call));
    spec
}

#[test]
fn checkpoint_restart_equivalent_across_engines_seed1() {
    let case = ChaosCase {
        seed: 0xE9_0001,
        ranks: 3,
        workload: Workload::Cg,
        drain: DrainMode::Alltoall,
        restart: true,
    };
    check_equivalence(&case, trigger_spec(1, 12));
}

#[test]
fn checkpoint_restart_equivalent_across_engines_seed2() {
    let case = ChaosCase {
        seed: 0xE9_0002,
        ranks: 4,
        workload: Workload::Gromacs,
        drain: DrainMode::Coordinator,
        restart: true,
    };
    check_equivalence(&case, trigger_spec(2, 9));
}

#[test]
fn checkpoint_restart_equivalent_across_engines_seed3() {
    let case = ChaosCase {
        seed: 0xE9_0003,
        ranks: 3,
        workload: Workload::Cg,
        drain: DrainMode::Coordinator,
        restart: true,
    };
    check_equivalence(&case, trigger_spec(0, 17));
}

/// Resume-mode coverage: no restart leg, so the invariant totals compare
/// single-leg stats directly.
#[test]
fn resume_mode_equivalent_across_engines() {
    let case = ChaosCase {
        seed: 0xE9_0004,
        ranks: 3,
        workload: Workload::Gromacs,
        drain: DrainMode::Alltoall,
        restart: false,
    };
    check_equivalence(&case, trigger_spec(1, 14));
}

/// The restart legs actually ran: with the trigger armed the case must
/// commit a round and go through restart, otherwise the equivalence
/// above compared two trivial (checkpoint-free) executions.
#[test]
fn equivalence_cases_exercise_restart() {
    // Distinct seed from the equivalence tests: the per-seed checkpoint
    // directory is shared within one process, and tests run in parallel.
    let case = ChaosCase {
        seed: 0xE9_0005,
        ranks: 3,
        workload: Workload::Cg,
        drain: DrainMode::Alltoall,
        restart: true,
    };
    let plan = Arc::new(FaultPlan::new(case.seed, trigger_spec(1, 12)));
    let (out, _) = run_under(
        &case,
        &plan,
        EngineKind::Coop(CoopCfg {
            workers: 2,
            sched_seed: case.seed,
        }),
    );
    assert!(
        out.report.restarted,
        "trigger never fired: {:?}",
        out.report
    );
    assert!(out.report.rounds >= 1);
    assert!(out.restart_stats.is_some());
}

/// Satellite (schedule exploration): the checked-in corpus of
/// explorer-found adversarial choice vectors replays clean, and for every
/// vector the Coop+Replay run agrees with a Thread-engine run of the same
/// workload on the schedule-invariant stats and the determinism-token
/// rings. Each corpus schedule also carries its own built-in oracle stack
/// (native-reference transparency, exactly one committed round) inside
/// [`chaos::explore::ExploreTarget::run_schedule`].
#[test]
fn adversarial_schedule_corpus_equivalent_across_engines() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/adversarial_schedules.txt");
    let fixtures = chaos::explore::load_fixtures(&path).expect("corpus parses");
    assert!(!fixtures.is_empty(), "corpus is empty");
    for fx in &fixtures {
        let target = fx
            .target()
            .unwrap_or_else(|e| panic!("fixture {}: {e}", fx.to_line()));
        let coop = target.run_schedule(&fx.choices);
        assert!(
            coop.error.is_none(),
            "fixture {} failed under coop replay: {:?}\n  repro: {}",
            fx.to_line(),
            coop.error,
            target.repro_command(&fx.choices)
        );
        let thread = target.run_thread_reference();
        assert!(
            thread.error.is_none(),
            "fixture {} failed under thread engine: {:?}",
            fx.to_line(),
            thread.error
        );
        assert_eq!(
            coop.invariant,
            thread.invariant,
            "fixture {}: schedule-invariant ManaStats diverged between engines",
            fx.to_line()
        );
        assert_eq!(
            coop.det_rings,
            thread.det_rings,
            "fixture {}: determinism-token rings diverged between engines",
            fx.to_line()
        );
    }
}
