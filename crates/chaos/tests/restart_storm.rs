//! Restart-storm chaos: crash the restart at journal-step boundaries —
//! singly, in sequences, and crossed with storage faults — and demand
//! convergence. The oracle for every case (see
//! `chaos::run_restart_kill_case`):
//!
//! - every armed kill fires as `RuntimeError::RestartKilled`;
//! - the clean restart after the storm finishes with values identical to
//!   both the native reference and an uncrashed baseline restart;
//! - the on-disk journal passes `mana_core::check_journal` (no duplicate
//!   idempotency key — a resume never redoes a completed step — and steps
//!   in protocol order);
//! - the final epoch commits with exactly the restart scope restored (no
//!   rank lost), and partial restarts journal only the failed ranks.
//!
//! Sweep sizes respect `CHAOS_BASE_SEED` / `CHAOS_SWEEP_COUNT` so the
//! nightly `restart-storm` job can run fresh seeds at higher volume.

use chaos::{check_restart_kill_case, env_base_seed, env_sweep_count, RestartKillCase};
use mana_core::{DrainMode, Mana, ManaConfig, ManaRuntime, RuntimeError};
use mpisim::{CoopCfg, EngineKind, StorageFaultKind};
use splitproc::{journal, store};
use std::time::Duration;
use workloads::{gromacs, ManaFace};

fn engines(seed: u64) -> [EngineKind; 2] {
    [
        EngineKind::Thread,
        EngineKind::Coop(CoopCfg {
            workers: 2,
            sched_seed: seed,
        }),
    ]
}

fn check(case: &RestartKillCase) {
    if let Err(msg) = check_restart_kill_case(case) {
        panic!("{msg}");
    }
}

/// One storm per engine that dies at *every* journal-step boundary in
/// sequence: attempt 0 is killed at boundary 0, its resume at boundary 1,
/// and so on through the final boundary, before the converging clean
/// restart. Besides covering each kill point, consecutive attempts form
/// every adjacent double-crash pair.
#[test]
fn storm_through_every_boundary_converges() {
    for (i, engine) in engines(7_000).into_iter().enumerate() {
        let seed = 7_000 + i as u64;
        let mut case = RestartKillCase::derive(seed, None, false, engine);
        case.kills = (0..case.boundaries()).collect();
        check(&case);
    }
}

/// Same storm, but for a partial restart: only the failed ranks' restores
/// are journaled, so the boundary space is smaller and the committed
/// epoch must list exactly the failed set.
#[test]
fn partial_restart_storm_through_every_boundary() {
    for (i, engine) in engines(7_100).into_iter().enumerate() {
        let seed = 7_100 + i as u64;
        let mut case = RestartKillCase::derive(seed, None, true, engine);
        case.kills = (0..case.boundaries()).collect();
        check(&case);
    }
}

/// Single crash against a fresh journal at each boundary — unlike the
/// sequential storm, every kill here lands on an empty journal, so this
/// covers "first crash at step k" for every k.
#[test]
fn single_kill_at_each_boundary_full_restart() {
    let case0 = RestartKillCase::derive(7_200, None, false, EngineKind::Thread);
    for k in 0..case0.boundaries() {
        let mut case = case0.clone();
        case.kills = vec![k];
        check(&case);
    }
}

/// Non-adjacent double-crash pairs (the sequential storm already covers
/// all adjacent ones): first, middle, and last boundary in all orders.
#[test]
fn double_crash_pairs_converge() {
    let case0 = RestartKillCase::derive(7_300, None, false, EngineKind::Thread);
    let last = case0.boundaries() - 1;
    let mid = case0.boundaries() / 2;
    for &(a, b) in &[
        (0, mid),
        (0, last),
        (mid, 0),
        (last, 0),
        (last, mid),
        (mid, mid),
    ] {
        let mut case = case0.clone();
        case.kills = vec![a, b];
        check(&case);
    }
}

/// Restart kills crossed with the storage-fault matrix: the newest
/// generation is damaged (torn / bit-flipped / its round aborted by a
/// write error) before the storm, so recovery must fall back past it *and*
/// survive the kills, on both engines, full and partial.
#[test]
fn restart_kill_storage_cross_matrix() {
    let kinds = [
        StorageFaultKind::WriteError,
        StorageFaultKind::TornWrite,
        StorageFaultKind::BitFlip,
    ];
    let mut seed = 7_400u64;
    for kind in kinds {
        for partial in [false, true] {
            let engine = engines(seed)[(seed % 2) as usize];
            let case = RestartKillCase::derive(seed, Some(kind), partial, engine);
            check(&case);
            seed += 1;
        }
    }
}

/// Fresh-seed sweep (the nightly entry point): fully-derived cases —
/// seeded kill count and boundaries, alternating full/partial and
/// engines, cycling storage-fault crosses.
#[test]
fn seeded_restart_kill_sweep() {
    let base = env_base_seed();
    let count = env_sweep_count();
    let kinds = [
        None,
        Some(StorageFaultKind::TornWrite),
        Some(StorageFaultKind::BitFlip),
        Some(StorageFaultKind::WriteError),
    ];
    for i in 0..count {
        let seed = base.wrapping_add(0x9_0000).wrapping_add(i);
        let engine = engines(seed)[(i % 2) as usize];
        let case = RestartKillCase::derive(
            seed,
            kinds[(i % kinds.len() as u64) as usize],
            i % 3 == 1,
            engine,
        );
        check(&case);
    }
}

/// Acceptance check from the issue: a partial restart of k of 64 ranks
/// journals exactly those k ranks as restored and converges. (No kills —
/// this is the scale test for the partial path itself.)
#[test]
fn partial_restart_of_64_ranks_restores_only_failed() {
    let case = RestartKillCase {
        seed: 7_640,
        ranks: 64,
        kills: vec![],
        partial: Some(vec![3, 17, 40, 41, 63]),
        storage: None,
        engine: EngineKind::Thread,
        drain: DrainMode::Alltoall,
    };
    check(&case);
}

/// The survivor-preserving property, end to end at the runtime level: rot
/// a survivor's manifest entry after commit. A *full* restart must refuse
/// the store entirely (no usable generation), while a *partial* restart
/// replacing only the other ranks proceeds — the survivor's image is read
/// leniently and its manifest damage cannot veto.
#[test]
fn survivor_manifest_damage_blocks_full_but_not_partial_restart() {
    let ranks = 3;
    let survivor = 2usize;
    let dir = std::env::temp_dir().join(format!(
        "mana2_restart_storm_survivor_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let base = ManaConfig {
        ckpt_dir: dir.clone(),
        deadlock_timeout: Some(Duration::from_secs(30)),
        ..ManaConfig::default()
    };
    let gcfg = |ckpt_at: Option<u64>| gromacs::GromacsConfig {
        atoms_per_rank: 96,
        steps: 8,
        compute_per_step: 0,
        energy_interval: 2,
        halo: 8,
        ckpt_at_step: ckpt_at,
        ckpt_round: 0,
    };
    let run = |cfg: &ManaConfig, ckpt_at: Option<u64>, mode: Option<&[usize]>| {
        let rt = ManaRuntime::new(ranks, cfg.clone());
        let g = gcfg(ckpt_at);
        let f = move |m: &mut Mana<'_>| -> mana_core::Result<gromacs::GromacsResult> {
            let mut face = ManaFace::new(m);
            gromacs::run(&mut face, &g).map_err(|e| e.into_mana())
        };
        match mode {
            None => rt.run_restart(f),
            Some(failed) => rt.run_restart_partial(failed, f),
        }
    };
    // Commit generation 0, then rot the survivor's manifest entry (the
    // image itself stays intact, so a lenient read still succeeds).
    {
        let rt = ManaRuntime::new(
            ranks,
            ManaConfig {
                exit_after_ckpt: true,
                ..base.clone()
            },
        );
        let g = gcfg(Some(2));
        let rep = rt
            .run_fresh(move |m: &mut Mana<'_>| {
                let mut face = ManaFace::new(m);
                gromacs::run(&mut face, &g).map_err(|e| e.into_mana())
            })
            .expect("checkpoint leg");
        assert!(rep.all_checkpointed());
    }
    let gdir = store::generation_dir(&dir, 0);
    let mut manifest = store::read_manifest(&gdir).expect("manifest");
    manifest.entries[survivor].crc ^= 0xDEAD_BEEF;
    std::fs::write(gdir.join(store::MANIFEST_FILE), manifest.to_bytes()).expect("rewrite");
    // The survivor's image must still parse — the damage is manifest-only.
    // (Layout-aware load: flat image or chunk-pool reassembly.)
    store::load_image(&gdir, survivor).expect("survivor image intact");
    // Full restart: the damaged entry vetoes the only generation.
    match run(&base, None, None) {
        Err(RuntimeError::Store(e)) => {
            assert!(e.to_string().contains("rank 2"), "{e}");
        }
        other => panic!("full restart should fail on the store, got {other:?}"),
    }
    // Partial restart replacing ranks {0, 1}: survivors cannot veto.
    let rep = run(&base, None, Some(&[0, 1])).expect("partial restart");
    assert!(rep.all_finished());
    assert_eq!(rep.restored_round, Some(0));
    assert_eq!(rep.restored_ranks, Some(vec![0, 1]));
    // Exactly the failed ranks were journaled as restored.
    let records = journal::read_records(&dir).expect("journal");
    assert!(mana_core::check_journal(&records).is_empty());
    let epochs = journal::replay_epochs(&records);
    let last = epochs.last().expect("an epoch");
    assert!(last.committed);
    assert_eq!(
        last.restored.iter().copied().collect::<Vec<_>>(),
        vec![0, 1]
    );
    let _ = std::fs::remove_dir_all(&dir);
}
