//! The seeded chaos suite: sweep deterministic fault plans across the
//! (workload × drain-mode) matrix and demand transparency — identical
//! results to the native run — under every plan.
//!
//! Each sweep uses a disjoint seed range, so the six matrix tests cover
//! 54 distinct seeds. A failure shrinks itself to a minimal fault spec
//! and prints a one-line repro:
//!
//! ```text
//! CHAOS_SEED=<seed> cargo test -p chaos --test chaos_suite seed_replay -- --nocapture
//! ```

use chaos::{
    check_case, check_storage_case, env_base_seed, env_seed, env_sweep_count, ChaosCase,
    StorageCase, Workload,
};
use mana_core::DrainMode;
use mpisim::StorageFaultKind;

fn sweep(base: u64, count: u64, workload: Workload, drain: DrainMode) {
    let mut triggered = 0usize;
    for seed in base..base + count {
        let case = ChaosCase::derive(seed, workload, drain);
        match check_case(&case) {
            Ok(report) => {
                if report.rounds > 0 {
                    triggered += 1;
                }
            }
            Err(msg) => panic!("{msg}"),
        }
    }
    // The sweep is only meaningful if the adversarial trigger actually
    // lands checkpoints; an all-quiet sweep means the plan generator broke.
    assert!(
        triggered > 0,
        "no seed in {base}..{} produced a checkpoint round",
        base + count
    );
}

#[test]
fn gromacs_alltoall_seeds() {
    sweep(1_000, 9, Workload::Gromacs, DrainMode::Alltoall);
}

#[test]
fn gromacs_coordinator_seeds() {
    sweep(2_000, 9, Workload::Gromacs, DrainMode::Coordinator);
}

#[test]
fn cg_alltoall_seeds() {
    sweep(3_000, 9, Workload::Cg, DrainMode::Alltoall);
}

#[test]
fn cg_coordinator_seeds() {
    sweep(4_000, 9, Workload::Cg, DrainMode::Coordinator);
}

#[test]
fn gromacs_toposort_seeds() {
    sweep(7_000, 9, Workload::Gromacs, DrainMode::TopoSort);
}

#[test]
fn cg_toposort_seeds() {
    sweep(8_000, 9, Workload::Cg, DrainMode::TopoSort);
}

/// Engine × seed matrix: fully-derived chaos cases must pass under the
/// cooperative engine too, across worker counts of 1, 2, and 3 (1 is the
/// strongest schedule: every blocking point must release its run token or
/// the world wedges). The sweeps above run under the default engine; the
/// dedicated `engine_equivalence` suite checks cross-engine determinism.
#[test]
fn coop_engine_seed_matrix() {
    use mpisim::{CoopCfg, EngineKind, FaultPlan};
    for (i, seed) in (6_000u64..6_006).enumerate() {
        let case = ChaosCase::from_seed(seed);
        let engine = EngineKind::Coop(CoopCfg {
            workers: 1 + (i % 3),
            sched_seed: seed,
        });
        let sink = mana_core::obs::TraceSink::wall(case.ranks, 4096);
        let plan = FaultPlan::from_seed(seed, case.ranks);
        if let Err(f) = chaos::run_case_engine(&case, plan, &sink, Some(engine)) {
            panic!(
                "coop matrix seed {seed} (workers {}): {} (repro: {})",
                1 + (i % 3),
                f.error,
                f.repro()
            );
        }
    }
}

/// Sweep one (storage-fault kind × mode) cell over a few seeds; each seed
/// varies world size, victim rank, and the damaged byte offset.
fn storage_sweep(base: u64, count: u64, kind: StorageFaultKind, restart: bool) {
    for seed in base..base + count {
        let case = StorageCase::derive(seed, kind, restart);
        if let Err(msg) = check_storage_case(&case) {
            panic!("{msg}");
        }
    }
}

#[test]
fn storage_write_error_resume_seeds() {
    storage_sweep(5_000, 3, StorageFaultKind::WriteError, false);
}

#[test]
fn storage_write_error_restart_seeds() {
    storage_sweep(5_100, 3, StorageFaultKind::WriteError, true);
}

#[test]
fn storage_torn_write_resume_seeds() {
    storage_sweep(5_200, 3, StorageFaultKind::TornWrite, false);
}

#[test]
fn storage_torn_write_restart_seeds() {
    storage_sweep(5_300, 3, StorageFaultKind::TornWrite, true);
}

#[test]
fn storage_bit_flip_resume_seeds() {
    storage_sweep(5_400, 3, StorageFaultKind::BitFlip, false);
}

#[test]
fn storage_bit_flip_restart_seeds() {
    storage_sweep(5_500, 3, StorageFaultKind::BitFlip, true);
}

/// CI fresh-seed storage sweep: like `fresh_sweep`, but cycling through
/// every (fault kind × mode) cell so each night's window exercises the
/// whole durability matrix on brand-new seeds.
#[test]
fn fresh_storage_sweep() {
    let base = env_base_seed() ^ 0x57A6_57A6;
    let count = env_sweep_count();
    let kinds = [
        StorageFaultKind::WriteError,
        StorageFaultKind::TornWrite,
        StorageFaultKind::BitFlip,
    ];
    for i in 0..count {
        let seed = base.wrapping_add(i);
        let kind = kinds[(i % 3) as usize];
        let restart = (i / 3) % 2 == 0;
        let case = StorageCase::derive(seed, kind, restart);
        if let Err(msg) = check_storage_case(&case) {
            panic!("{msg}");
        }
    }
}

/// Nightly drain crossing: force a single quiesce strategy (`CHAOS_DRAIN`,
/// default toposort so routine runs still touch the new protocol) across a
/// window of fresh fault *and* storage seeds. The regular fresh sweeps
/// derive the strategy from the seed, so each covers only ~1/3 of any one
/// protocol per night; this test pins it, and CI runs it once per strategy.
#[test]
fn fresh_drain_sweep() {
    let drain = std::env::var("CHAOS_DRAIN")
        .ok()
        .and_then(|v| DrainMode::parse(&v))
        .unwrap_or(DrainMode::TopoSort);
    let base = env_base_seed() ^ 0xD4A1_D4A1;
    let count = env_sweep_count();
    let kinds = [
        StorageFaultKind::WriteError,
        StorageFaultKind::TornWrite,
        StorageFaultKind::BitFlip,
    ];
    for i in 0..count {
        let seed = base.wrapping_add(i);
        let workload = if i % 2 == 0 {
            Workload::Gromacs
        } else {
            Workload::Cg
        };
        let case = ChaosCase::derive(seed, workload, drain);
        if let Err(msg) = check_case(&case) {
            panic!("{msg}");
        }
        let mut storage = StorageCase::derive(seed, kinds[(i % 3) as usize], i % 2 == 0);
        storage.drain = drain;
        if let Err(msg) = check_storage_case(&storage) {
            panic!("{msg}");
        }
    }
}

/// Replay hook: `CHAOS_SEED=<seed>` reruns exactly one failing scenario
/// (workload, drain mode, world size, restart mode, and every per-message
/// decision are all functions of the seed).
#[test]
fn seed_replay() {
    let seed = env_seed().unwrap_or(0x00C0_FFEE);
    let case = ChaosCase::from_seed(seed);
    eprintln!("seed_replay: {case:?}");
    if let Err(msg) = check_case(&case) {
        panic!("{msg}");
    }
}

/// CI fresh-seed sweep: `CHAOS_BASE_SEED` (the nightly job passes its run
/// id) selects a window of brand-new seeds, `CHAOS_SWEEP_COUNT` its width.
/// Defaults keep routine runs fast; nightly asks for 32.
#[test]
fn fresh_sweep() {
    let base = env_base_seed();
    let count = env_sweep_count();
    for i in 0..count {
        let case = ChaosCase::from_seed(base.wrapping_add(i));
        if let Err(msg) = check_case(&case) {
            panic!("{msg}");
        }
    }
}
