//! The seeded chaos suite: sweep deterministic fault plans across the
//! (workload × drain-mode) matrix and demand transparency — identical
//! results to the native run — under every plan.
//!
//! Each sweep uses a disjoint seed range, so the four matrix tests cover
//! 36 distinct seeds. A failure shrinks itself to a minimal fault spec
//! and prints a one-line repro:
//!
//! ```text
//! CHAOS_SEED=<seed> cargo test -p chaos --test chaos_suite seed_replay -- --nocapture
//! ```

use chaos::{check_case, env_base_seed, env_seed, env_sweep_count, ChaosCase, Workload};
use mana_core::DrainMode;

fn sweep(base: u64, count: u64, workload: Workload, drain: DrainMode) {
    let mut triggered = 0usize;
    for seed in base..base + count {
        let case = ChaosCase::derive(seed, workload, drain);
        match check_case(&case) {
            Ok(report) => {
                if report.rounds > 0 {
                    triggered += 1;
                }
            }
            Err(msg) => panic!("{msg}"),
        }
    }
    // The sweep is only meaningful if the adversarial trigger actually
    // lands checkpoints; an all-quiet sweep means the plan generator broke.
    assert!(
        triggered > 0,
        "no seed in {base}..{} produced a checkpoint round",
        base + count
    );
}

#[test]
fn gromacs_alltoall_seeds() {
    sweep(1_000, 9, Workload::Gromacs, DrainMode::Alltoall);
}

#[test]
fn gromacs_coordinator_seeds() {
    sweep(2_000, 9, Workload::Gromacs, DrainMode::Coordinator);
}

#[test]
fn cg_alltoall_seeds() {
    sweep(3_000, 9, Workload::Cg, DrainMode::Alltoall);
}

#[test]
fn cg_coordinator_seeds() {
    sweep(4_000, 9, Workload::Cg, DrainMode::Coordinator);
}

/// Replay hook: `CHAOS_SEED=<seed>` reruns exactly one failing scenario
/// (workload, drain mode, world size, restart mode, and every per-message
/// decision are all functions of the seed).
#[test]
fn seed_replay() {
    let seed = env_seed().unwrap_or(0x00C0_FFEE);
    let case = ChaosCase::from_seed(seed);
    eprintln!("seed_replay: {case:?}");
    if let Err(msg) = check_case(&case) {
        panic!("{msg}");
    }
}

/// CI fresh-seed sweep: `CHAOS_BASE_SEED` (the nightly job passes its run
/// id) selects a window of brand-new seeds, `CHAOS_SWEEP_COUNT` its width.
/// Defaults keep routine runs fast; nightly asks for 32.
#[test]
fn fresh_sweep() {
    let base = env_base_seed();
    let count = env_sweep_count();
    for i in 0..count {
        let case = ChaosCase::from_seed(base.wrapping_add(i));
        if let Err(msg) = check_case(&case) {
            panic!("{msg}");
        }
    }
}
