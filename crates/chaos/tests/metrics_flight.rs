//! Metrics-plane acceptance under chaos: a `RestartKill` failure must
//! leave a flight dump whose metrics sidecar (the final registry
//! snapshot) is schema-valid and agrees with what the run actually did —
//! and the clean rerun's `RunReport` snapshot must agree with its own
//! `ManaStats`. Exercised on both execution engines.

use mana_core::{obs, Mana, ManaConfig, ManaRuntime, RuntimeError};
use mpisim::{CoopCfg, EngineKind, FaultPlan, FaultSpec, ReduceOp, WorldCfg};
use obs::metrics as met;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn step_workload(m: &mut Mana<'_>, total_steps: u64) -> mana_core::Result<u64> {
    let w = m.comm_world();
    let mut step = m
        .upper()
        .read_value::<u64>("step")
        .transpose()?
        .unwrap_or(0);
    let mut acc = m.upper().read_value::<u64>("acc").transpose()?.unwrap_or(0);
    while step < total_steps {
        if step == 2 && m.round() == 0 && m.rank() == 0 {
            m.request_checkpoint()?;
        }
        let s = m.allreduce_t(w, ReduceOp::Sum, &[step + m.rank() as u64])?;
        acc += s[0];
        step += 1;
        m.upper_mut().write_value("step", &step);
        m.upper_mut().write_value("acc", &acc);
        m.step_commit()?;
    }
    Ok(acc)
}

/// Find this process's `mana2_restart_kill_*` metrics sidecars.
fn kill_dump_sidecars() -> Vec<PathBuf> {
    let prefix = format!("mana2_restart_kill_{}_", std::process::id());
    let Ok(rd) = std::fs::read_dir(obs::default_trace_dir()) else {
        return Vec::new();
    };
    rd.filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".metrics.json"))
        })
        .collect()
}

fn run_engine(engine: EngineKind, tag: &str) {
    let n = 2;
    let sink = obs::TraceSink::wall(n, 4096);
    let dir = std::env::temp_dir().join(format!("mana2_mflight_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ManaConfig {
        ckpt_dir: dir.clone(),
        exit_after_ckpt: true,
        trace: Some(sink.clone()),
        deadlock_timeout: Some(Duration::from_secs(30)),
        ..ManaConfig::default()
    };
    let wc = WorldCfg {
        engine,
        watchdog: Some(Duration::from_secs(60)),
        ..WorldCfg::default()
    };

    // Leg 1: checkpoint-and-exit. The report snapshot must agree with the
    // coordinator's round report.
    let pass1 = ManaRuntime::new(n, cfg.clone())
        .with_world_cfg(wc.clone())
        .run_fresh(|m| step_workload(m, 6))
        .unwrap();
    assert!(pass1.all_checkpointed(), "{:?}", pass1.outcomes);
    let snap1 = pass1.metrics.as_ref().expect("run report carries metrics");
    assert_eq!(
        snap1.value("mana2_rounds_committed_total"),
        Some(pass1.coord.rounds.len() as u64),
        "committed-rounds counter disagrees with CoordReport"
    );
    assert!(
        snap1.hist("mana2_round_latency_ns").unwrap().count >= 1,
        "committed round must observe a round latency"
    );

    // Leg 2: restart killed mid rank-restore (boundary 6 of the
    // 2*(n+4)=12 journal-step boundaries). The failure must dump a
    // flight recording with a metrics sidecar recording the kill.
    let before = kill_dump_sidecars();
    let kcfg = ManaConfig {
        fault: Some(Arc::new(FaultPlan::new(
            0xC0FFEE,
            FaultSpec {
                restart_kill: Some(6),
                ..FaultSpec::quiet()
            },
        ))),
        ..cfg.clone()
    };
    let err = ManaRuntime::new(n, kcfg)
        .with_world_cfg(wc.clone())
        .run_restart(|m| step_workload(m, 6))
        .unwrap_err();
    assert!(
        matches!(err, RuntimeError::RestartKilled { step: 6 }),
        "{err:?}"
    );
    let sidecar = kill_dump_sidecars()
        .into_iter()
        .find(|p| !before.contains(p))
        .expect("RestartKill failure should dump a metrics sidecar");
    let text = std::fs::read_to_string(&sidecar).unwrap();
    met::check_series(&text).expect("kill-dump metrics sidecar is schema-valid");
    let (_, snaps) = met::parse_series(&text).unwrap();
    let ksnap = snaps.last().expect("sidecar holds the final snapshot");
    assert_eq!(ksnap.value("mana2_restart_kills_total"), Some(1));
    assert_eq!(
        ksnap.value("mana2_restarts_full_total"),
        Some(0),
        "killed restart must not count as completed"
    );
    assert!(ksnap.value("mana2_faults_fired_total").unwrap() >= 1);
    // Intent + GenValidated were durably appended before the kill.
    assert!(ksnap.value("mana2_journal_appends_total").unwrap() >= 2);
    let _ = std::fs::remove_file(&sidecar);

    // Leg 3: clean rerun resumes the journal epoch and completes; its
    // snapshot's restart_* counters must agree with ManaStats/RunReport.
    let pass3 = ManaRuntime::new(n, cfg)
        .with_world_cfg(wc)
        .run_restart(|m| step_workload(m, 6))
        .unwrap();
    assert!(pass3.all_finished(), "{:?}", pass3.outcomes);
    let snap3 = pass3.metrics.as_ref().unwrap();
    assert_eq!(snap3.value("mana2_restarts_full_total"), Some(1));
    assert_eq!(snap3.value("mana2_restarts_partial_total"), Some(0));
    assert_eq!(snap3.value("mana2_restart_kills_total"), Some(0));
    assert_eq!(
        snap3.value("mana2_restart_ranks_restored_total"),
        Some(pass3.restored_ranks.as_ref().unwrap().len() as u64),
        "ranks-restored counter disagrees with RunReport.restored_ranks"
    );
    assert_eq!(
        snap3.value("mana2_restart_comms_restored_total"),
        Some(pass3.rank_stats.iter().map(|s| s.restored_comms).sum()),
        "comms-restored counter disagrees with ManaStats"
    );
    assert_eq!(
        snap3.value("mana2_restart_replayed_calls_total"),
        Some(pass3.rank_stats.iter().map(|s| s.replayed_calls).sum()),
        "replayed-calls counter disagrees with ManaStats"
    );
    assert_eq!(snap3.hist("mana2_restart_full_ns").unwrap().count, 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_kill_dump_metrics_agree_thread_engine() {
    run_engine(EngineKind::Thread, "thread");
}

#[test]
fn restart_kill_dump_metrics_agree_coop_engine() {
    run_engine(
        EngineKind::Coop(CoopCfg {
            workers: 0,
            sched_seed: 42,
        }),
        "coop",
    );
}
