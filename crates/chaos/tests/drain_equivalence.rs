//! Satellite check (pluggable drain strategies): the same `(seed, fault
//! plan)` chaos case must behave identically whether the checkpoint
//! window quiesces with the alltoall drain or the topological-sort drain.
//!
//! The quiesce protocol decides *how* in-flight traffic is counted and
//! captured, never *what* state survives the checkpoint. So for each seed
//! the full checkpoint-and-restart case runs once per strategy — on both
//! execution engines — and the suite demands:
//!
//! - identical [`chaos::CaseReport`]s (committed rounds, restart taken);
//! - identical per-rank schedule-invariant `ManaStats` totals (summed
//!   across the checkpoint and restart legs, see
//!   `ManaStats::schedule_invariant`);
//! - identical per-actor determinism-token rings — the projection already
//!   excludes the strategy-specific count exchange (`drain_exchange`,
//!   `drain_plan`, `drain_schedule`) exactly so this comparison is
//!   meaningful.
//!
//! Result correctness against the fault-free native reference is already
//! asserted inside [`chaos::run_case_engine`] for every leg.

use chaos::{case_token_rings, run_case_engine, ChaosCase, EngineCaseOutcome, Workload};
use mana_core::obs;
use mana_core::DrainMode;
use mpisim::{CoopCfg, EngineKind, FaultPlan, FaultSpec};
use std::sync::Arc;

fn run_under(
    case: &ChaosCase,
    plan: &Arc<FaultPlan>,
    engine: EngineKind,
) -> (EngineCaseOutcome, Vec<(i32, Vec<String>)>) {
    let sink = obs::TraceSink::wall(case.ranks, 16384);
    let out = run_case_engine(case, plan.clone(), &sink, Some(engine)).unwrap_or_else(|f| {
        panic!(
            "seed {:#x} ({} drain) failed under {}: {}",
            case.seed,
            case.drain.name(),
            engine.name(),
            f.error
        )
    });
    assert_eq!(sink.dropped(), 0, "ring overwrote events; raise capacity");
    (out, case_token_rings(&sink, case.ranks))
}

/// A quiet plan with only the adversarial checkpoint trigger armed — the
/// trigger is what opens the checkpoint window the strategies must agree
/// inside.
fn trigger_spec(rank: usize, call: u64) -> FaultSpec {
    let mut spec = FaultSpec::quiet();
    spec.trigger_at_call = Some((rank, call));
    spec
}

/// Run `case` under both drain strategies on both engines and demand the
/// observable checkpoint-window behavior is strategy-invariant.
fn check_drain_equivalence(case: &ChaosCase, spec: FaultSpec) {
    let seed = case.seed;
    let plan = Arc::new(FaultPlan::new(seed, spec));
    let engines = [
        EngineKind::Thread,
        EngineKind::Coop(CoopCfg {
            workers: 2,
            sched_seed: seed,
        }),
    ];
    for engine in engines {
        let alltoall = ChaosCase {
            drain: DrainMode::Alltoall,
            ..case.clone()
        };
        let toposort = ChaosCase {
            drain: DrainMode::TopoSort,
            ..case.clone()
        };
        let (out_a, rings_a) = run_under(&alltoall, &plan, engine);
        let (out_t, rings_t) = run_under(&toposort, &plan, engine);
        assert_eq!(
            out_a.report,
            out_t.report,
            "seed {seed:#x} under {}: strategies disagree on rounds/restart",
            engine.name()
        );
        assert_eq!(
            out_a.invariant_totals(),
            out_t.invariant_totals(),
            "seed {seed:#x} under {}: schedule-invariant ManaStats diverged between strategies",
            engine.name()
        );
        for ((actor_a, toks_a), (actor_t, toks_t)) in rings_a.iter().zip(rings_t.iter()) {
            assert_eq!(actor_a, actor_t);
            assert_eq!(
                toks_a,
                toks_t,
                "seed {seed:#x}, actor {actor_a} under {}: checkpoint-window sequence \
                 diverged between strategies",
                engine.name()
            );
        }
    }
}

#[test]
fn drain_equivalent_seed1_cg_restart() {
    let case = ChaosCase {
        seed: 0xD4_0001,
        ranks: 3,
        workload: Workload::Cg,
        drain: DrainMode::Alltoall,
        restart: true,
    };
    check_drain_equivalence(&case, trigger_spec(1, 12));
}

#[test]
fn drain_equivalent_seed2_gromacs_restart() {
    let case = ChaosCase {
        seed: 0xD4_0002,
        ranks: 4,
        workload: Workload::Gromacs,
        drain: DrainMode::Alltoall,
        restart: true,
    };
    check_drain_equivalence(&case, trigger_spec(2, 9));
}

#[test]
fn drain_equivalent_seed3_cg_resume() {
    let case = ChaosCase {
        seed: 0xD4_0003,
        ranks: 3,
        workload: Workload::Cg,
        drain: DrainMode::Alltoall,
        restart: false,
    };
    check_drain_equivalence(&case, trigger_spec(0, 17));
}

#[test]
fn drain_equivalent_seed4_gromacs_resume() {
    let case = ChaosCase {
        seed: 0xD4_0004,
        ranks: 3,
        workload: Workload::Gromacs,
        drain: DrainMode::Alltoall,
        restart: false,
    };
    check_drain_equivalence(&case, trigger_spec(1, 14));
}

/// The restart leg actually ran under the topo-sort drain: with the
/// trigger armed the case must commit a round and rebuild every rank
/// from its image, otherwise the equivalence above compared two trivial
/// (checkpoint-free) executions.
#[test]
fn toposort_cases_exercise_restart() {
    // Distinct seed from the equivalence tests: the per-seed checkpoint
    // directory is shared within one process, and tests run in parallel.
    let case = ChaosCase {
        seed: 0xD4_0005,
        ranks: 3,
        workload: Workload::Cg,
        drain: DrainMode::TopoSort,
        restart: true,
    };
    let plan = Arc::new(FaultPlan::new(case.seed, trigger_spec(1, 12)));
    let (out, _) = run_under(&case, &plan, EngineKind::Thread);
    assert!(
        out.report.restarted,
        "trigger never fired: {:?}",
        out.report
    );
    assert!(out.report.rounds >= 1);
    assert!(out.restart_stats.is_some());
}
