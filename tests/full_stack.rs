//! Repo-level integration tests spanning all crates: the full stack of
//! simulator → split-process → MANA layer → workloads.

use mana2::mana_core::{
    CallbackStyle, CommRestore, DrainMode, ManaConfig, ManaRuntime, TpcMode, VtBackend,
};
use mana2::mpisim::WorldCfg;
use mana2::splitproc::FsMode;
use mana2::workloads::{gromacs, ManaFace};
use std::path::PathBuf;
use std::time::Duration;

fn ckpt_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mana2_fs_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn wcfg() -> WorldCfg {
    WorldCfg {
        watchdog: Some(Duration::from_secs(120)),
        ..WorldCfg::default()
    }
}

fn md_cfg(steps: u64) -> gromacs::GromacsConfig {
    gromacs::GromacsConfig {
        atoms_per_rank: 64,
        steps,
        compute_per_step: 0,
        energy_interval: 3,
        halo: 8,
        ckpt_at_step: None,
        ckpt_round: 0,
    }
}

#[test]
fn ten_checkpoint_rounds_like_fig3() {
    // The paper checkpoints GROMACS ten times in a row (Fig. 3). Here:
    // ten resume-mode rounds over a longer MD run, all transparent.
    let n = 4;
    let dir = ckpt_dir("ten_rounds");
    let cfg = ManaConfig {
        ckpt_dir: dir.clone(),
        ..ManaConfig::default()
    };
    let md = md_cfg(40);
    let report = ManaRuntime::new(n, cfg)
        .with_world_cfg(wcfg())
        .run_fresh(move |m| {
            let world = m.comm_world();
            let mut f = ManaFace::new(m);
            // Interleave: request a checkpoint every 4 steps from inside
            // the workload by running it in 10 chunks.
            let mut cfg = md.clone();
            for chunk in 0..10u64 {
                cfg.steps = (chunk + 1) * 4;
                cfg.ckpt_at_step = Some(chunk * 4 + 1);
                cfg.ckpt_round = chunk;
                gromacs::run(&mut f, &cfg).map_err(|e| e.into_mana())?;
            }
            let _ = world;
            gromacs::run(&mut f, &md_cfg(40)).map_err(|e| e.into_mana())
        })
        .unwrap();
    assert_eq!(report.coord.rounds.len(), 10, "ten checkpoint rounds");
    // Every round produced images; sizes are stable across rounds (state
    // size does not change). Stability is judged against the median, not
    // min-vs-max: an image also carries whatever in-flight traffic the
    // drain happened to capture, and a round landing at an unusually
    // quiet (or busy) instant — timing the coop engine cannot pin on an
    // oversubscribed machine — legitimately shifts one round's size.
    let sizes: Vec<u64> = report
        .coord
        .rounds
        .iter()
        .map(|r| r.total_image_bytes)
        .collect();
    assert!(sizes.iter().all(|&s| s > 0));
    let mut sorted = sizes.clone();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let near_median = sizes
        .iter()
        .filter(|&&s| s < median + median / 2 && median < s + s / 2)
        .count();
    assert!(
        near_median + 1 >= sizes.len(),
        "image sizes should be stable across rounds: {sizes:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn image_size_scales_with_application_state() {
    let n = 2;
    let mut sizes = Vec::new();
    for atoms in [64usize, 256, 1024] {
        let dir = ckpt_dir(&format!("size_{atoms}"));
        let cfg = ManaConfig {
            ckpt_dir: dir.clone(),
            ..ManaConfig::default()
        };
        let md = gromacs::GromacsConfig {
            atoms_per_rank: atoms,
            steps: 4,
            compute_per_step: 0,
            energy_interval: 2,
            halo: 8,
            ckpt_at_step: Some(1),
            ckpt_round: 0,
        };
        let report = ManaRuntime::new(n, cfg)
            .with_world_cfg(wcfg())
            .run_fresh(move |m| {
                let mut f = ManaFace::new(m);
                gromacs::run(&mut f, &md).map_err(|e| e.into_mana())
            })
            .unwrap();
        sizes.push(report.coord.rounds[0].total_image_bytes);
        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(
        sizes[0] < sizes[1] && sizes[1] < sizes[2],
        "checkpoint size must grow with state: {sizes:?}"
    );
}

#[test]
fn configuration_matrix_smoke() {
    // Representative corners of the configuration space all survive a
    // checkpoint+resume round of the MD workload.
    let combos: Vec<(&str, ManaConfig)> = vec![
        (
            "modern",
            ManaConfig {
                ckpt_dir: ckpt_dir("cfg_modern"),
                ..ManaConfig::default()
            },
        ),
        (
            "master",
            ManaConfig {
                ckpt_dir: ckpt_dir("cfg_master"),
                ..ManaConfig::master_branch()
            },
        ),
        (
            "legacy_drain",
            ManaConfig {
                drain: DrainMode::Coordinator,
                ckpt_dir: ckpt_dir("cfg_ldrain"),
                ..ManaConfig::default()
            },
        ),
        (
            "linear_vtable_lambda",
            ManaConfig {
                vtable: VtBackend::Linear,
                callback_style: CallbackStyle::Lambda,
                ckpt_dir: ckpt_dir("cfg_linlam"),
                ..ManaConfig::default()
            },
        ),
        (
            "fsgsbase_replaylog",
            ManaConfig {
                fs_mode: FsMode::Fsgsbase,
                comm_restore: CommRestore::ReplayLog,
                ckpt_dir: ckpt_dir("cfg_fsgr"),
                ..ManaConfig::default()
            },
        ),
        (
            "original_btree",
            ManaConfig {
                tpc: TpcMode::Original,
                vtable: VtBackend::BTree,
                ckpt_dir: ckpt_dir("cfg_origbt"),
                ..ManaConfig::default()
            },
        ),
    ];
    let mut energies = Vec::new();
    for (name, cfg) in combos {
        let dir = cfg.ckpt_dir.clone();
        let md = gromacs::GromacsConfig {
            ckpt_at_step: Some(2),
            ..md_cfg(6)
        };
        let report = ManaRuntime::new(3, cfg)
            .with_world_cfg(wcfg())
            .run_fresh(move |m| {
                let mut f = ManaFace::new(m);
                gromacs::run(&mut f, &md).map_err(|e| e.into_mana())
            })
            .unwrap_or_else(|e| panic!("config {name} failed: {e}"));
        let vals = report.values();
        energies.push((name, vals[0].energy));
        std::fs::remove_dir_all(&dir).ok();
    }
    // Transparency across configurations: every config computes the same
    // physics.
    let first = energies[0].1;
    for (name, e) in &energies {
        assert_eq!(*e, first, "config {name} changed application results");
    }
}

#[test]
fn facade_reexports_work() {
    // The facade crate exposes all four layers.
    let _ = mana2::mpisim::MachineProfile::haswell();
    let _ = mana2::splitproc::FsMode::Workaround;
    let _ = mana2::mana_core::VCOMM_WORLD;
    let cases = mana2::workloads::vasp::table1_cases();
    assert_eq!(cases.len(), 9);
}
