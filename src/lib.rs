pub use mana_core;
pub use mpisim;
pub use splitproc;
pub use workloads;
